"""Tests for the reactive runtime co-simulator and the Jikes/V8 schemes."""

import pytest

from repro.core import FunctionProfile, OCSPInstance
from repro.vm.costbenefit import OracleModel
from repro.vm.jikes import run_jikes
from repro.vm.runtime import RuntimeSimulator, default_sample_period
from repro.vm.v8 import V8Scheme, run_v8


def honest_oracle(instance):
    return OracleModel(
        instance, hotness_optimism=1.0, hotness_sigma=0.0, hotness_floor=0.0
    )


@pytest.fixture()
def single_function_instance():
    profiles = {"a": FunctionProfile("a", (2.0, 6.0), (5.0, 1.0))}
    return OCSPInstance(profiles, ("a",) * 6, name="single")


class TestV8Scheme:
    def test_hand_computed_timeline(self):
        profiles = {"a": FunctionProfile("a", (2.0, 6.0), (5.0, 1.0))}
        inst = OCSPInstance(profiles, ("a",) * 4, name="v8hand")
        result = run_v8(inst, sample_period=1000.0)
        # compile0 [0,2]; exec [2,7]; 2nd call enqueues high at t=7,
        # compile1 [7,13]; calls run at: L0 [2,7], L0 [7,12],
        # L0 [12,17], L1 [17,18].
        assert result.makespan == 18.0
        assert result.total_bubble_time == 2.0
        assert result.calls_at_level == {0: 3, 1: 1}

    def test_schedule_records_enqueue_order(self):
        profiles = {
            "a": FunctionProfile("a", (1.0, 2.0), (3.0, 1.0)),
            "b": FunctionProfile("b", (1.0, 2.0), (3.0, 1.0)),
        }
        inst = OCSPInstance(profiles, ("a", "b", "a", "b"), name="v8order")
        result = run_v8(inst)
        tasks = [(t.function, t.level) for t in result.schedule]
        assert tasks == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        assert list(result.enqueue_times) == sorted(result.enqueue_times)

    def test_single_call_functions_never_promoted(self):
        profiles = {"a": FunctionProfile("a", (1.0, 2.0), (3.0, 1.0))}
        inst = OCSPInstance(profiles, ("a",), name="once")
        result = run_v8(inst)
        assert [t.level for t in result.schedule] == [0]

    def test_high_level_capped_by_profile(self):
        profiles = {"a": FunctionProfile("a", (1.0,), (3.0,))}
        inst = OCSPInstance(profiles, ("a", "a"), name="onelevel")
        result = run_v8(inst)  # high level 1 does not exist: no promotion
        assert [t.level for t in result.schedule] == [0]

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            V8Scheme(low=1, high=1)


class TestJikesScheme:
    def test_hand_computed_recompilation(self, single_function_instance):
        result = run_jikes(
            single_function_instance,
            model=honest_oracle(single_function_instance),
            sample_period=5.0,
        )
        # compile0 [0,2]; execs of 5 at [2,7],[7,12],[12,17]; sampler
        # tick at 10 gives k=2 → future 2 → recompile at level 1
        # (cost 2+6 < 10); compile1 [10,16]; remaining calls [17,18],
        # [18,19],[19,20].
        assert result.makespan == 20.0
        assert result.calls_at_level == {0: 3, 1: 3}
        assert [(t.function, t.level) for t in result.schedule] == [
            ("a", 0),
            ("a", 1),
        ]

    def test_sampler_tick_count(self, single_function_instance):
        result = run_jikes(
            single_function_instance,
            model=honest_oracle(single_function_instance),
            sample_period=5.0,
        )
        # Ticks at 5, 10, 15, 20 all land inside executions.
        assert result.samples_taken == 4

    def test_no_recompilation_for_cold_run(self):
        profiles = {"a": FunctionProfile("a", (2.0, 50.0), (5.0, 4.0))}
        inst = OCSPInstance(profiles, ("a",) * 3, name="cold")
        result = run_jikes(inst, model=honest_oracle(inst), sample_period=5.0)
        assert [t.level for t in result.schedule] == [0]

    def test_default_model_used_when_none(self, single_function_instance):
        result = run_jikes(single_function_instance, sample_period=5.0)
        assert result.makespan > 0


class TestRuntimeSimulator:
    def test_first_compile_blocks_execution(self):
        profiles = {"a": FunctionProfile("a", (7.0,), (1.0,))}
        inst = OCSPInstance(profiles, ("a",), name="block")
        result = run_v8(inst)
        assert result.total_bubble_time == 7.0
        assert result.makespan == 8.0

    def test_first_request_arrives_at_call_time(self):
        # Requests are reactive: b's first compile is enqueued when b
        # is first *called*, so a second compiler thread cannot help
        # two functions whose first calls are serialized.
        profiles = {
            "a": FunctionProfile("a", (10.0,), (1.0,)),
            "b": FunctionProfile("b", (10.0,), (1.0,)),
        }
        inst = OCSPInstance(profiles, ("a", "b"), name="threads")
        one = RuntimeSimulator(inst, V8Scheme(), compile_threads=1).run()
        two = RuntimeSimulator(inst, V8Scheme(), compile_threads=2).run()
        assert one.makespan == 22.0
        assert two.makespan == 22.0
        assert list(one.enqueue_times) == [0.0, 11.0]

    def test_two_compiler_threads_overlap_recompile_with_first_compile(self):
        # a's promotion (enqueued at its 2nd call) competes with b's
        # first compile; a second thread removes the queueing delay.
        profiles = {
            "a": FunctionProfile("a", (10.0, 20.0), (1.0, 0.5)),
            "b": FunctionProfile("b", (10.0,), (1.0,)),
        }
        inst = OCSPInstance(profiles, ("a", "a", "b"), name="threads2")
        one = RuntimeSimulator(inst, V8Scheme(), compile_threads=1).run()
        two = RuntimeSimulator(inst, V8Scheme(), compile_threads=2).run()
        # 1 thread: a0 [0,10], exec [10,11]; a1 enq@11 [11,31];
        # exec a [11,12]; b enq@12, queued behind a1 → [31,41];
        # exec b [41,42].
        assert one.makespan == 42.0
        # 2 threads: a1 on thread 1 [11,31]; b on thread 0 [12,22];
        # exec b [22,23].
        assert two.makespan == 23.0

    def test_duplicate_requests_ignored(self):
        profiles = {"a": FunctionProfile("a", (1.0, 2.0), (3.0, 1.0))}
        inst = OCSPInstance(profiles, ("a",) * 5, name="dup")
        result = run_v8(inst)
        # Second invocation promotes once; later invocations must not
        # re-enqueue level 1.
        assert len(result.schedule) == 2

    def test_enqueue_validates_level(self):
        profiles = {"a": FunctionProfile("a", (1.0,), (3.0,))}
        inst = OCSPInstance(profiles, ("a",), name="lvl")
        sim = RuntimeSimulator(inst, V8Scheme(), sample_period=1.0)
        sim._thread_free = [0.0]
        with pytest.raises(ValueError):
            sim.enqueue("a", 3, 0.0)

    def test_bad_parameters(self):
        profiles = {"a": FunctionProfile("a", (1.0,), (3.0,))}
        inst = OCSPInstance(profiles, ("a",), name="bad")
        with pytest.raises(ValueError):
            RuntimeSimulator(inst, V8Scheme(), compile_threads=0)
        with pytest.raises(ValueError):
            RuntimeSimulator(inst, V8Scheme(), sample_period=0.0)

    def test_default_sample_period(self, single_function_instance):
        period = default_sample_period(single_function_instance, ticks=10)
        assert period == pytest.approx(6 * 5.0 / 10)

    def test_default_sample_period_empty(self):
        inst = OCSPInstance({}, ())
        assert default_sample_period(inst) == 1.0

    def test_schedule_is_simulatable(self, small_synthetic):
        """The emergent schedule is a legal OCSP schedule."""
        result = run_jikes(small_synthetic)
        result.schedule.validate(small_synthetic)

    def test_makespan_accounting(self, small_synthetic):
        result = run_jikes(small_synthetic)
        assert result.total_exec_time + result.total_bubble_time == pytest.approx(
            result.makespan
        )


class TestTieredScheme:
    def test_promotion_at_thresholds(self):
        from repro.vm.hotspot import TieredScheme, run_tiered

        profiles = {
            "a": FunctionProfile("a", (1.0, 5.0, 20.0), (8.0, 4.0, 1.0)),
        }
        inst = OCSPInstance(profiles, ("a",) * 12, name="tiered")
        result = run_tiered(inst, thresholds=(1, 3, 10))
        tasks = [(t.function, t.level) for t in result.schedule]
        assert tasks == [("a", 0), ("a", 1), ("a", 2)]

    def test_thresholds_validated(self):
        from repro.vm.hotspot import TieredScheme

        with pytest.raises(ValueError):
            TieredScheme(thresholds=(2, 5))
        with pytest.raises(ValueError):
            TieredScheme(thresholds=(1, 5, 5))
        with pytest.raises(ValueError):
            TieredScheme(thresholds=())

    def test_levels_beyond_profile_skipped(self):
        from repro.vm.hotspot import run_tiered

        profiles = {"a": FunctionProfile("a", (1.0, 5.0), (8.0, 1.0))}
        inst = OCSPInstance(profiles, ("a",) * 30, name="twotier")
        result = run_tiered(inst, thresholds=(1, 3, 10))
        assert [t.level for t in result.schedule] == [0, 1]

    def test_valid_on_synthetic(self, small_synthetic):
        from repro.vm.hotspot import run_tiered

        result = run_tiered(small_synthetic, thresholds=(1, 5, 100, 1000))
        result.schedule.validate(small_synthetic)
        from repro.core import lower_bound

        assert result.makespan >= lower_bound(small_synthetic)
