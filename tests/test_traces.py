"""Tests for trace (de)serialization."""

import json

import pytest

from repro.workloads import traces
from repro.workloads.synthetic import WorkloadSpec, generate


class TestRoundTrip:
    def test_json_roundtrip(self, fig2_instance):
        text = traces.to_json(fig2_instance)
        back = traces.from_json(text)
        assert back.calls == fig2_instance.calls
        assert back.profiles == dict(fig2_instance.profiles)
        assert back.name == fig2_instance.name

    def test_synthetic_roundtrip(self):
        inst = generate(WorkloadSpec(num_functions=10, num_calls=200), seed=9)
        back = traces.from_json(traces.to_json(inst))
        assert back.calls == inst.calls
        assert back.profiles == dict(inst.profiles)

    def test_file_roundtrip(self, tmp_path, fig1_instance):
        path = tmp_path / "trace.json"
        traces.save(fig1_instance, path)
        back = traces.load(path)
        assert back.calls == fig1_instance.calls

    def test_empty_instance(self):
        from repro.core import OCSPInstance

        inst = OCSPInstance({}, (), name="empty")
        back = traces.from_json(traces.to_json(inst))
        assert back.num_calls == 0


class TestFormat:
    def test_version_field(self, fig1_instance):
        doc = json.loads(traces.to_json(fig1_instance))
        assert doc["version"] == 1
        assert {"name", "functions", "calls"} <= set(doc)

    def test_unsupported_version_rejected(self, fig1_instance):
        doc = json.loads(traces.to_json(fig1_instance))
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            traces.from_json(json.dumps(doc))

    def test_calls_stored_as_indices(self, fig1_instance):
        doc = json.loads(traces.to_json(fig1_instance))
        assert all(isinstance(i, int) for i in doc["calls"])
