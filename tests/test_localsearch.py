"""Tests for the local-search schedule improver."""

import pytest

from repro.core import Schedule, iar_schedule, optimal_schedule, simulate
from repro.core.localsearch import improve_schedule
from repro.core.single_level import base_level_schedule


class TestImproveSchedule:
    def test_never_worse(self, small_synthetic):
        start = base_level_schedule(small_synthetic)
        improved, stats = improve_schedule(
            small_synthetic, start, iterations=300, seed=1
        )
        assert stats.final_makespan <= stats.initial_makespan
        assert (
            simulate(small_synthetic, improved, validate=False).makespan
            == pytest.approx(stats.final_makespan)
        )

    def test_result_valid(self, small_synthetic):
        improved, _ = improve_schedule(
            small_synthetic,
            base_level_schedule(small_synthetic),
            iterations=300,
            seed=2,
        )
        improved.validate(small_synthetic)

    def test_improves_bad_start(self, fig2_instance):
        # Starting from a poor schedule, search must find the optimum
        # of this tiny instance.
        bad = Schedule.of(("f0", 0), ("f1", 1), ("f2", 1))
        improved, stats = improve_schedule(
            fig2_instance, bad, iterations=1500, seed=3
        )
        opt = optimal_schedule(fig2_instance)
        assert stats.final_makespan == pytest.approx(opt.makespan)

    def test_cannot_improve_the_optimum(self, fig2_instance):
        opt = optimal_schedule(fig2_instance)
        _, stats = improve_schedule(
            fig2_instance, opt.schedule, iterations=800, seed=4
        )
        assert stats.final_makespan == pytest.approx(opt.makespan)

    def test_deterministic(self, small_synthetic):
        start = base_level_schedule(small_synthetic)
        a = improve_schedule(small_synthetic, start, iterations=200, seed=9)
        b = improve_schedule(small_synthetic, start, iterations=200, seed=9)
        assert a[0] == b[0]
        assert a[1] == b[1]

    def test_annealing_mode(self, small_synthetic):
        start = base_level_schedule(small_synthetic)
        improved, stats = improve_schedule(
            small_synthetic, start, iterations=300, seed=5, temperature=0.05
        )
        assert stats.final_makespan <= stats.initial_makespan
        improved.validate(small_synthetic)

    def test_bad_iterations(self, fig2_instance):
        with pytest.raises(ValueError):
            improve_schedule(fig2_instance, Schedule.of(("f0", 0), ("f1", 0), ("f2", 0)), iterations=0)

    def test_invalid_start_rejected(self, fig2_instance):
        from repro.core import ScheduleError

        with pytest.raises(ScheduleError):
            improve_schedule(fig2_instance, Schedule.of(("f0", 0)))

    def test_stats_improvement_property(self, small_synthetic):
        start = base_level_schedule(small_synthetic)
        _, stats = improve_schedule(small_synthetic, start, iterations=200, seed=6)
        assert 0.0 <= stats.improvement < 1.0

    def test_iar_is_hard_to_improve(self, small_synthetic):
        """The near-optimality probe: local search barely improves IAR."""
        start = iar_schedule(small_synthetic)
        _, stats = improve_schedule(
            small_synthetic, start, iterations=600, seed=7
        )
        assert stats.improvement < 0.08


class TestSearchMetrics:
    def test_metrics_account_for_every_step(self, small_synthetic):
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        start = base_level_schedule(small_synthetic)
        _, stats = improve_schedule(
            small_synthetic, start, iterations=300, seed=5, metrics=reg
        )
        snap = reg.snapshot()
        assert snap["localsearch.proposed"] == 300
        assert snap["localsearch.accepted"] == stats.accepted
        assert snap.get("localsearch.improved", 0) <= snap["localsearch.accepted"]
        if "localsearch.gain" in reg:
            assert snap["localsearch.gain"]["count"] == stats.accepted

    def test_metrics_do_not_perturb_the_search(self, small_synthetic):
        from repro.observability import MetricsRegistry

        start = base_level_schedule(small_synthetic)
        plain, _ = improve_schedule(
            small_synthetic, start, iterations=250, seed=9
        )
        counted, _ = improve_schedule(
            small_synthetic, start, iterations=250, seed=9,
            metrics=MetricsRegistry(),
        )
        assert plain == counted
