"""End-to-end tests for ``repro bench`` and the perf regression gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import compare_doc, result_doc, run_benchmark
from repro.perf.suites import REGISTRY

SCALE = "0.002"


@pytest.fixture(scope="module")
def bench_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench")
    baselines = root / "baselines"
    results = root / "results"
    code = main(
        [
            "bench", "run",
            "--suite", "quick",
            "--scale", SCALE,
            "--repeats", "2",
            "--warmups", "0",
            "--update-baselines",
            "--baseline-dir", str(baselines),
        ]
    )
    assert code == 0
    return baselines, results


class TestBenchRun:
    def test_writes_one_document_per_benchmark(self, bench_dirs, capsys):
        baselines, _ = bench_dirs
        files = sorted(p.name for p in baselines.glob("BENCH_*.json"))
        assert len(files) == len(REGISTRY)
        doc = json.loads((baselines / files[0]).read_text())
        assert doc["kind"] == "perf"
        assert doc["scale"] == float(SCALE)
        assert doc["counters"]
        assert doc["timing"]["repeats"] == 2

    def test_unknown_suite_exits_2(self, capsys):
        assert main(["bench", "run", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err


class TestBenchCompare:
    def test_unchanged_tree_round_trips_to_exit_0(self, bench_dirs, capsys):
        baselines, results = bench_dirs
        code = main(
            [
                "bench", "run",
                "--suite", "quick",
                "--scale", SCALE,
                "--repeats", "2",
                "--warmups", "0",
                "--out", str(results),
            ]
        )
        assert code == 0
        code = main(
            [
                "bench", "compare",
                "--results", str(results),
                "--baselines", str(baselines),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        # Same machine, same code: counters exact-match everywhere.
        assert "fail" not in out.splitlines()[-1]

    def test_counter_regression_fails_the_gate(
        self, bench_dirs, tmp_path, capsys
    ):
        baselines, _ = bench_dirs
        doctored = tmp_path / "doctored"
        doctored.mkdir()
        for path in baselines.glob("BENCH_*.json"):
            doc = json.loads(path.read_text())
            (doctored / path.name).write_text(json.dumps(doc))
        # Inflate one counter in one result: the code "did more work".
        victim = next(iter(sorted(doctored.glob("BENCH_*.json"))))
        doc = json.loads(victim.read_text())
        key = next(iter(doc["counters"]))
        doc["counters"][key] += 1
        victim.write_text(json.dumps(doc))
        code = main(
            [
                "bench", "compare",
                "--results", str(doctored),
                "--baselines", str(baselines),
            ]
        )
        assert code == 1
        assert "counter regression" in capsys.readouterr().out

    def test_report_never_gates(self, bench_dirs, tmp_path, capsys):
        baselines, _ = bench_dirs
        empty = tmp_path / "empty"
        code = main(
            [
                "bench", "report",
                "--results", str(empty),
                "--baselines", str(baselines),
                "--markdown", "-",
            ]
        )
        assert code == 0
        assert "Overall: **skip**" in capsys.readouterr().out

    def test_json_report_written(self, bench_dirs, tmp_path, capsys):
        baselines, _ = bench_dirs
        out = tmp_path / "report.json"
        code = main(
            [
                "bench", "compare",
                "--results", str(baselines),  # compare against itself
                "--baselines", str(baselines),
                "--json", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["overall"] == "pass"
        assert len(report["comparisons"]) == len(REGISTRY)


class TestInjectedRegressionIsCaught:
    def test_extra_replay_pass_trips_the_counter_gate(self, monkeypatch):
        """The acceptance scenario: a deliberate extra O(n) pass in the
        fast engine changes no output, barely moves wall time at tiny
        scale — and the counter gate still catches it exactly."""
        from repro.core.fastsim import FastSimulator

        spec = REGISTRY["fastsim_evaluate"]
        baseline = result_doc(
            run_benchmark(spec.name, spec.make, scale=0.001, repeats=2)
        )

        original = FastSimulator._replay

        def with_extra_pass(self, prep, i0, t0, exec0, bubble0):
            original(self, prep, i0, t0, exec0, bubble0)  # wasted work
            return original(self, prep, i0, t0, exec0, bubble0)

        monkeypatch.setattr(FastSimulator, "_replay", with_extra_pass)
        current = result_doc(
            run_benchmark(spec.name, spec.make, scale=0.001, repeats=2)
        )
        comparison = compare_doc(current, baseline)
        assert comparison.status == "fail"
        regressed = {
            d.counter for d in comparison.counter_diffs if d.regressed
        }
        assert "fastsim.replays" in regressed
        assert "fastsim.calls_replayed" in regressed


class TestDiagnoseJson:
    @pytest.fixture()
    def trace_and_schedule(self, tmp_path):
        trace = tmp_path / "trace.json"
        schedule = tmp_path / "schedule.json"
        assert main(
            [
                "generate",
                "--functions", "15",
                "--calls", "600",
                "--seed", "3",
                "-o", str(trace),
            ]
        ) == 0
        assert main(
            ["schedule", str(trace), "--algorithm", "iar", "-o", str(schedule)]
        ) == 0
        return trace, schedule

    def test_json_to_file(self, trace_and_schedule, tmp_path, capsys):
        trace, schedule = trace_and_schedule
        out = tmp_path / "gap.json"
        code = main(
            [
                "diagnose", str(trace), str(schedule),
                "--intervals", "4",
                "--json", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["makespan"] == pytest.approx(
            doc["lower_bound"] + doc["bubbles"]
            + doc["excess_before_upgrade"] + doc["excess_never_upgraded"]
        )
        assert doc["gap"] == pytest.approx(doc["makespan"] - doc["lower_bound"])
        assert len(doc["per_interval"]) == 4
        assert doc["per_function"]  # full split, not just --top

    def test_json_to_stdout_suppresses_tables(self, trace_and_schedule, capsys):
        trace, schedule = trace_and_schedule
        code = main(["diagnose", str(trace), str(schedule), "--json", "-"])
        assert code == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # the whole stdout is one JSON document
        assert "per_function" in doc


class TestLegacySidecar:
    def test_report_fixture_writes_schema_versioned_sidecar(self, tmp_path):
        from repro.perf import SCHEMA_VERSION, write_legacy_sidecar

        path = write_legacy_sidecar(tmp_path, "table1", "| x |", scale=0.01)
        doc = json.loads(path.read_text())
        assert path.name == "BENCH_table1.json"
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["kind"] == "legacy-text"
        assert doc["text"] == "| x |"
        assert doc["machine"]["cpu_count"] >= 1
