"""Tests for the exhaustive ground-truth solver."""

import pytest

from repro.core import (
    FunctionProfile,
    OCSPInstance,
    SearchBudgetExceeded,
    optimal_schedule,
    simulate,
)


class TestOptimalSchedule:
    def test_fig1_optimum_is_scheme_s3(self, fig1_instance):
        result = optimal_schedule(fig1_instance)
        assert result.makespan == 10.0

    def test_fig2_optimum(self, fig2_instance):
        result = optimal_schedule(fig2_instance)
        assert result.makespan == 12.0

    def test_returned_schedule_achieves_reported_makespan(self, fig2_instance):
        result = optimal_schedule(fig2_instance)
        sim = simulate(fig2_instance, result.schedule)
        assert sim.makespan == result.makespan

    def test_single_function(self):
        inst = OCSPInstance(
            {"a": FunctionProfile("a", (1.0, 4.0), (5.0, 1.0))},
            ("a", "a", "a"),
        )
        result = optimal_schedule(inst)
        # Candidates: C0 (1+15=16), C1 (4; calls at 4,9,14 → 15... run:
        # first call waits 4, each runs 1 → 7), C0C1: c0@1, c1@5:
        # call1 [1,6] level0, call2 [6,7] level1, call3 [7,8] → 8.
        assert result.makespan == 7.0

    def test_budget_exceeded(self, fig2_instance):
        with pytest.raises(SearchBudgetExceeded):
            optimal_schedule(fig2_instance, max_schedules=5)

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError):
            optimal_schedule(OCSPInstance({}, ()))

    def test_multithreaded_compilation(self, fig2_instance):
        one = optimal_schedule(fig2_instance, compile_threads=1)
        two = optimal_schedule(fig2_instance, compile_threads=2)
        assert two.makespan <= one.makespan

    def test_counts_schedules(self, fig1_instance):
        result = optimal_schedule(fig1_instance)
        # 3 functions with chains {1,3,3}: assignments 1*3*3 chain
        # combos, interleavings per combo — just sanity-check scale.
        assert result.schedules_evaluated > 10
