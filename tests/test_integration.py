"""End-to-end integration: mini VM → trace → schedulers → simulator."""

import pytest

from repro.analysis.experiments import scheme_comparison
from repro.core import iar_schedule, lower_bound, simulate
from repro.core.single_level import base_level_schedule
from repro.jitsim import extract_instance, fib_program, loops_program, phased_program
from repro.vm.jikes import run_jikes
from repro.vm.v8 import run_v8
from repro.workloads import traces


@pytest.fixture(scope="module")
def loops_instance():
    return extract_instance(loops_program(hot_calls=400, warm_calls=30), name="loops")


class TestMiniVMPipeline:
    def test_all_schedulers_produce_valid_schedules(self, loops_instance):
        inst = loops_instance
        iar_schedule(inst).validate(inst)
        base_level_schedule(inst).validate(inst)
        run_jikes(inst).schedule.validate(inst)
        run_v8(inst).schedule.validate(inst)

    def test_iar_beats_base_level_on_hot_workload(self, loops_instance):
        inst = loops_instance
        iar_span = simulate(inst, iar_schedule(inst), validate=False).makespan
        base_span = simulate(
            inst, base_level_schedule(inst), validate=False
        ).makespan
        assert iar_span <= base_span

    def test_reactive_runtimes_bounded_by_lower_bound(self, loops_instance):
        inst = loops_instance
        lb = lower_bound(inst)
        assert run_jikes(inst).makespan >= lb
        assert run_v8(inst).makespan >= lb

    def test_scheme_comparison_on_minivm_trace(self, loops_instance):
        row = scheme_comparison(loops_instance)
        assert row["iar"] >= 1.0
        assert row["default"] >= row["iar"] - 0.25  # sanity, not a theorem

    def test_phased_program_rewards_scheduling(self):
        """In the phased workload, beta's first compile competes with
        alpha's recompilation — exactly the ordering problem the paper
        studies.  IAR must not lose to the naive all-low schedule."""
        inst = extract_instance(phased_program(phase_calls=300), name="phased")
        iar_span = simulate(inst, iar_schedule(inst), validate=False).makespan
        base_span = simulate(
            inst, base_level_schedule(inst), validate=False
        ).makespan
        assert iar_span <= base_span

    def test_trace_roundtrip_preserves_makespans(self, tmp_path, loops_instance):
        inst = loops_instance
        path = tmp_path / "loops.json"
        traces.save(inst, path)
        back = traces.load(path)
        sched = iar_schedule(inst)
        assert simulate(back, sched, validate=False).makespan == pytest.approx(
            simulate(inst, sched, validate=False).makespan
        )

    def test_fib_trace_is_hot_single_function(self):
        # fib(18) makes ~8k invocations — hot enough that recompiling
        # pays for itself under the simulated compiler's cost model.
        inst = extract_instance(fib_program(), 18, name="fib")
        sched = iar_schedule(inst)
        assert (sched.highest_level_of("fib") or 0) > 0
