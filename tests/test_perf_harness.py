"""Tests for the dual-signal measurement harness (repro.perf.harness)."""

from __future__ import annotations

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.perf import (
    HarnessError,
    TimingStats,
    counters_of,
    robust_stats,
    run_benchmark,
)


class TestRobustStats:
    def test_single_sample(self):
        stats = robust_stats([2.0])
        assert stats.repeats == 1
        assert stats.min_s == stats.median_s == stats.max_s == 2.0
        assert stats.iqr_s == 0.0

    def test_quartiles_and_iqr(self):
        stats = robust_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median_s == 3.0
        assert stats.q1_s == 2.0
        assert stats.q3_s == 4.0
        assert stats.iqr_s == 2.0
        assert stats.mean_s == pytest.approx(3.0)

    def test_order_independent(self):
        assert robust_stats([3.0, 1.0, 2.0]).median_s == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            robust_stats([])

    def test_round_trips_through_dict(self):
        stats = robust_stats([1.0, 2.0, 3.0])
        assert TimingStats.from_dict(stats.as_dict()) == stats


class TestCountersOf:
    def test_counters_and_histogram_counts_only(self):
        reg = MetricsRegistry()
        reg.counter("work.items").inc(7)
        reg.gauge("depth").set(3.0)  # excluded: no work semantics
        hist = reg.histogram("gain")
        hist.record(1.5)
        hist.record(2.5)
        flat = counters_of(reg)
        assert flat == {"work.items": 7, "gain.count": 2}


class TestRunBenchmark:
    def test_measures_and_collects_counters(self):
        def make(scale):
            def fn(metrics):
                metrics.counter("ticks").inc(int(scale * 1000))

            return fn

        result = run_benchmark("toy", make, scale=0.5, warmups=1, repeats=3)
        assert result.name == "toy"
        assert result.scale == 0.5
        assert result.counters == {"ticks": 500}
        assert result.timing.repeats == 3
        assert result.timing.min_s >= 0.0

    def test_setup_excluded_from_counters(self):
        calls = {"setup": 0, "run": 0}

        def make(scale):
            calls["setup"] += 1

            def fn(metrics):
                calls["run"] += 1
                metrics.counter("runs").inc()

            return fn

        run_benchmark("toy", make, scale=1.0, warmups=2, repeats=3)
        assert calls["setup"] == 1  # factory once, never per repeat
        assert calls["run"] == 5  # 2 warmups + 3 timed

    def test_nondeterministic_counters_rejected(self):
        state = {"n": 0}

        def make(scale):
            def fn(metrics):
                state["n"] += 1
                metrics.counter("drift").inc(state["n"])

            return fn

        with pytest.raises(HarnessError, match="nondeterministic"):
            run_benchmark("bad", make, scale=1.0, warmups=0, repeats=2)

    def test_invalid_repeats_and_warmups(self):
        def make(scale):
            return lambda metrics: None

        with pytest.raises(ValueError):
            run_benchmark("toy", make, scale=1.0, repeats=0)
        with pytest.raises(ValueError):
            run_benchmark("toy", make, scale=1.0, warmups=-1)

    def test_params_recorded(self):
        def make(scale):
            return lambda metrics: None

        result = run_benchmark(
            "toy", make, scale=1.0, repeats=1, params={"threads": 2}
        )
        assert result.params == {"threads": 2}
        assert result.as_dict()["params"] == {"threads": 2}


class TestSuiteRegistry:
    def test_quick_suite_covers_the_hot_paths(self):
        from repro.perf import get_suite

        names = {spec.name for spec in get_suite("quick")}
        assert {
            "core_simulate",
            "fastsim_evaluate",
            "fastsim_incremental",
            "localsearch_moves",
            "priorityqueue_hotness",
            "store_roundtrip",
            "trace_record",
            "runner_serial",
        } <= names

    def test_unknown_suite_raises(self):
        from repro.perf import get_suite

        with pytest.raises(KeyError, match="nope"):
            get_suite("nope")

    def test_duplicate_registration_rejected(self):
        from repro.perf import REGISTRY, register

        assert "core_simulate" in REGISTRY
        with pytest.raises(ValueError, match="already registered"):
            register("core_simulate")(lambda scale: lambda metrics: None)

    def test_one_quick_benchmark_end_to_end(self):
        # The cheapest registered benchmark at a tiny scale: the full
        # run path (warmups, fresh registry per repeat, deterministic
        # counters) on real engine code.
        from repro.perf import REGISTRY, run_benchmark

        spec = REGISTRY["core_simulate"]
        result = run_benchmark(
            spec.name, spec.make, scale=0.001, warmups=1, repeats=2
        )
        assert result.counters["makespan.runs"] == 5
        assert result.counters["makespan.calls"] > 0
