"""Tests for single-level approximations (Section 5.1)."""


from repro.core import simulate
from repro.core.single_level import (
    base_level_schedule,
    optimizing_level_schedule,
    single_level_schedule,
)


class TestSingleLevelSchedule:
    def test_first_appearance_order(self, fig2_instance):
        sched = single_level_schedule(fig2_instance, lambda f: 0)
        assert [t.function for t in sched] == ["f0", "f1", "f2"]

    def test_one_task_per_function(self, fig2_instance):
        sched = single_level_schedule(fig2_instance, lambda f: 0)
        assert len(sched) == fig2_instance.num_functions

    def test_level_chooser_applied(self, fig2_instance):
        sched = single_level_schedule(
            fig2_instance, lambda f: 1 if f != "f0" else 0
        )
        assert sched.highest_level_of("f1") == 1
        assert sched.highest_level_of("f0") == 0

    def test_valid(self, fig2_instance, small_synthetic):
        for inst in (fig2_instance, small_synthetic):
            assert single_level_schedule(inst, lambda f: 0).is_valid_for(inst)


class TestBaseLevel:
    def test_all_level_zero(self, small_synthetic):
        sched = base_level_schedule(small_synthetic)
        assert all(t.level == 0 for t in sched)

    def test_fig1_matches_scheme_s1(self, fig1_instance):
        sched = base_level_schedule(fig1_instance)
        assert simulate(fig1_instance, sched).makespan == 11.0


class TestOptimizingLevel:
    def test_defaults_to_cost_effective(self, two_function_instance):
        sched = optimizing_level_schedule(two_function_instance)
        assert sched.highest_level_of("hot") == 1
        assert sched.highest_level_of("cold") == 0

    def test_explicit_levels(self, fig1_instance):
        sched = optimizing_level_schedule(fig1_instance, levels={"f0": 0, "f1": 1, "f2": 0})
        assert simulate(fig1_instance, sched).makespan == 12.0  # scheme s2

    def test_no_recompilations(self, small_synthetic):
        sched = optimizing_level_schedule(small_synthetic)
        names = [t.function for t in sched]
        assert len(names) == len(set(names))
