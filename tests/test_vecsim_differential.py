"""Differential battery: VectorSimulator vs FastSimulator vs reference.

The vector engine promises *bitwise* equality with both other engines —
same float operations in the same order — for full evaluation, totals,
timelines, fault-degraded runs (``task_compile_times`` /
``task_installs``), the incremental propose/commit path, and the work
counters (``fastsim.*`` down to ``span_calls_replayed``, whose value
depends on the replay chunk schedule the vector kernel mirrors
exactly).  The battery drives random instances, costs, call sequences,
compiler-thread counts, and fault specs through all three engines, and
pins the zero-length and single-call edges.

The same tests double as the no-numpy gate: ``REPRO_NO_NUMPY=1`` makes
``VectorSimulator`` fall back to the fast engine's pure-Python path,
and the whole battery must still pass (CI runs it both ways).
"""

from __future__ import annotations

import math
import random
from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CompileTask,
    FastSimulator,
    FunctionProfile,
    OCSPInstance,
    Schedule,
    VectorSimulator,
    make_simulator,
    simulate,
)
from repro.core.engine import ENGINES, ReferenceSimulator, resolve_engine
from repro.core.localsearch import _propose, improve_schedule
from repro.faults import simulate_with_faults
from repro.observability import MetricsRegistry
from repro.perf.harness import counters_of

from test_fast_simulator import (
    assert_results_equal,
    instances,
    random_instance,
    random_schedule,
)

FAULT_SPECS = [
    "compile_fail=0.4,seed=3",
    "compile_fail=0.7,retries=0,seed=9",
    "stall=0.5,stall_factor=4.0,seed=2",
    "compile_fail=0.3,stall=0.3,retries=2,seed=17",
]


def engines_for(instance, threads=1, preinstalled=None):
    return (
        ReferenceSimulator(instance, compile_threads=threads, preinstalled=preinstalled),
        FastSimulator(instance, compile_threads=threads, preinstalled=preinstalled),
        VectorSimulator(instance, compile_threads=threads, preinstalled=preinstalled),
    )


# ---------------------------------------------------------------------------
# full evaluation
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(instances(), st.integers(min_value=1, max_value=4), st.randoms())
def test_evaluate_three_engines_bitwise_equal(instance, threads, hyp_rng):
    rng = random.Random(hyp_rng.randrange(1 << 30))
    schedule = random_schedule(instance, rng)
    ref, fast, vec = engines_for(instance, threads)
    for record in (False, True):
        r = ref.evaluate(schedule, record_timeline=record)
        assert_results_equal(fast.evaluate(schedule, record_timeline=record), r)
        assert_results_equal(vec.evaluate(schedule, record_timeline=record), r)


def test_evaluate_seeded_generator_sweep():
    rng = random.Random(20260808)
    for _ in range(60):
        instance = random_instance(rng)
        threads = rng.randint(1, 4)
        schedule = random_schedule(instance, rng)
        ref, fast, vec = engines_for(instance, threads)
        r = ref.evaluate(schedule)
        assert_results_equal(fast.evaluate(schedule), r)
        assert_results_equal(vec.evaluate(schedule), r)


def test_single_call_trace():
    prof = {"f0": FunctionProfile("f0", (1.0, 2.0), (4.0, 1.0))}
    inst = OCSPInstance(prof, ("f0",), name="tiny")
    sched = Schedule.of(("f0", 0))
    ref, fast, vec = engines_for(inst)
    r = ref.evaluate(sched, record_timeline=True)
    assert_results_equal(vec.evaluate(sched, record_timeline=True), r)
    assert r.makespan == 1.0 + 4.0  # compile then blocked first call


def test_zero_length_trace():
    prof = {"f0": FunctionProfile("f0", (1.0,), (4.0,))}
    inst = OCSPInstance(prof, (), name="empty")
    sched = Schedule(())
    ref, fast, vec = engines_for(inst)
    for engine in (ref, fast, vec):
        r = engine.evaluate(sched, record_timeline=True)
        assert r.makespan == 0.0
        assert r.total_exec_time == 0.0
        assert r.calls_at_level == {}


def test_preinstalled_three_engines():
    rng = random.Random(13)
    for _ in range(20):
        instance = random_instance(rng)
        pre = {
            fname: rng.randrange(instance.profiles[fname].num_levels)
            for fname in instance.called_functions
            if rng.random() < 0.5
        }
        tasks = [
            t for t in random_schedule(instance, rng) if t.function not in pre
        ]
        schedule = Schedule(tuple(tasks))
        fast = FastSimulator(instance, preinstalled=pre)
        vec = VectorSimulator(instance, preinstalled=pre)
        r = simulate(instance, schedule, preinstalled=pre, record_timeline=True)
        assert_results_equal(fast.evaluate(schedule, record_timeline=True), r)
        assert_results_equal(vec.evaluate(schedule, record_timeline=True), r)


# ---------------------------------------------------------------------------
# fault-degraded runs (task_compile_times / task_installs overrides)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", FAULT_SPECS)
def test_faulted_runs_three_engines(spec):
    rng = random.Random(hash(spec) & 0xFFFF)
    for _ in range(8):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        threads = rng.randint(1, 3)
        results = []
        plans = []
        for engine in ENGINES:
            r, p = simulate_with_faults(
                instance, schedule, spec,
                compile_threads=threads, engine=engine,
            )
            results.append(r)
            plans.append(p)
        ref = results[0]
        for other in results[1:]:
            assert_results_equal(other, ref)
        # The degradation decisions precede the engine: identical plans.
        for p in plans[1:]:
            assert p.tasks == plans[0].tasks
            assert p.compile_times == plans[0].compile_times
            assert p.installs == plans[0].installs
            assert p.summary() == plans[0].summary()


def test_direct_override_arrays_three_engines():
    rng = random.Random(99)
    for _ in range(25):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        n = len(schedule.tasks)
        if n == 0:
            continue
        compile_times = [rng.uniform(0.1, 20.0) for _ in range(n)]
        installs = [True] + [rng.random() < 0.8 for _ in range(n - 1)]
        # Every called function keeps one installing task.
        seen = set()
        for i, task in enumerate(schedule.tasks):
            if task.function not in seen:
                installs[i] = True
                seen.add(task.function)
        release = sorted(rng.uniform(0.0, 5.0) for _ in range(n))
        kw = dict(
            release_times=release,
            task_compile_times=compile_times,
            task_installs=installs,
        )
        r = simulate(instance, schedule, validate=False, **kw)
        fast = FastSimulator(instance)
        vec = VectorSimulator(instance)
        assert_results_equal(fast.evaluate(schedule, **kw), r)
        assert_results_equal(vec.evaluate(schedule, **kw), r)


# ---------------------------------------------------------------------------
# incremental propose/commit + counter identity (fastsim.* families)
# ---------------------------------------------------------------------------


def test_incremental_chain_and_counters_identical():
    """fast and vector walk identical propose/commit chains AND report
    identical work counters — including ``fastsim.span_calls_replayed``,
    which is only equal because the vector kernel mirrors the fast
    engine's cutoff-replay chunk schedule exactly."""
    rng = random.Random(424242)
    for _ in range(40):
        instance = random_instance(rng)
        threads = rng.randint(1, 4)
        mf, mv = MetricsRegistry(), MetricsRegistry()
        fast = FastSimulator(instance, compile_threads=threads, metrics=mf)
        vec = VectorSimulator(instance, compile_threads=threads, metrics=mv)
        schedule = random_schedule(instance, rng)
        assert fast.bind(schedule) == vec.bind(schedule)
        tasks = list(schedule)
        for _ in range(8):
            proposal = _propose(instance, tasks, rng)
            if proposal is None:
                continue
            cutoff = fast.baseline_makespan if rng.random() < 0.5 else None
            sf = fast.propose(proposal, cutoff=cutoff)
            sv = vec.propose(proposal, cutoff=cutoff)
            assert sf == sv or (math.isinf(sf) and math.isinf(sv))
            if not math.isinf(sf) and rng.random() < 0.6:
                assert fast.commit() == vec.commit()
                tasks = proposal
        assert_results_equal(
            vec.result(record_timeline=True), fast.result(record_timeline=True)
        )
        assert counters_of(mv) == counters_of(mf)


def test_evaluate_counters_identical():
    rng = random.Random(77)
    for _ in range(20):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        mf, mv = MetricsRegistry(), MetricsRegistry()
        FastSimulator(instance, metrics=mf).evaluate(schedule)
        VectorSimulator(instance, metrics=mv).evaluate(schedule)
        assert counters_of(mv) == counters_of(mf)


def test_trace_stats_matches_fast():
    rng = random.Random(31)
    for _ in range(20):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        span = simulate(instance, schedule).makespan
        t = span * rng.random()
        fast = FastSimulator(instance)
        vec = VectorSimulator(instance)
        assert vec.trace_stats(schedule, before_time=t, after_time=t) == \
            fast.trace_stats(schedule, before_time=t, after_time=t)


# ---------------------------------------------------------------------------
# the vector engine inside local search
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("temperature", [0.0, 0.05])
@pytest.mark.parametrize("threads", [1, 2])
def test_localsearch_vector_walks_fast_trajectory(temperature, threads):
    rng = random.Random(4242 + threads)
    instance = random_instance(rng)
    schedule = random_schedule(instance, rng)
    mf, mv = MetricsRegistry(), MetricsRegistry()
    fast_sched, fast_stats = improve_schedule(
        instance, schedule, iterations=120, seed=9,
        temperature=temperature, compile_threads=threads,
        engine="fast", metrics=mf,
    )
    vec_sched, vec_stats = improve_schedule(
        instance, schedule, iterations=120, seed=9,
        temperature=temperature, compile_threads=threads,
        engine="vector", metrics=mv,
    )
    assert tuple(vec_sched) == tuple(fast_sched)
    assert vec_stats == fast_stats
    assert counters_of(mv) == counters_of(mf)


# ---------------------------------------------------------------------------
# the engine seam
# ---------------------------------------------------------------------------


def test_simulate_engine_dispatch_bitwise_equal():
    rng = random.Random(5150)
    for _ in range(15):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        threads = rng.randint(1, 3)
        r = simulate(instance, schedule, compile_threads=threads)
        for engine in ("fast", "vector"):
            assert_results_equal(
                simulate(
                    instance, schedule, compile_threads=threads, engine=engine
                ),
                r,
            )


def test_simulate_engine_counters_identical():
    rng = random.Random(6)
    instance = random_instance(rng)
    schedule = random_schedule(instance, rng)
    snapshots = []
    for engine in ENGINES:
        m = MetricsRegistry()
        simulate(instance, schedule, metrics=m, engine=engine)
        snapshots.append(counters_of(m))
    assert snapshots[0] == snapshots[1] == snapshots[2]


def test_unknown_engine_rejected_everywhere():
    prof = {"f0": FunctionProfile("f0", (1.0,), (1.0,))}
    inst = OCSPInstance(prof, ("f0",), name="tiny")
    sched = Schedule.of(("f0", 0))
    with pytest.raises(ValueError, match="engine"):
        simulate(inst, sched, engine="warp")
    with pytest.raises(ValueError, match="engine"):
        make_simulator(inst, "warp")
    with pytest.raises(ValueError, match="engine"):
        resolve_engine("warp")


def test_repro_engine_env_sets_default(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "vector")
    rng = random.Random(8)
    instance = random_instance(rng)
    schedule = random_schedule(instance, rng)
    sim = make_simulator(instance)
    assert isinstance(sim, VectorSimulator)
    r = simulate(instance, schedule)  # dispatches through the default
    monkeypatch.delenv("REPRO_ENGINE")
    assert_results_equal(r, simulate(instance, schedule))


def test_engine_cache_reused_and_bypassed_with_metrics():
    rng = random.Random(12)
    instance = random_instance(rng)
    schedule = random_schedule(instance, rng)
    simulate(instance, schedule, engine="vector")
    cache = instance._engine_cache
    assert len(cache) == 1
    simulate(instance, schedule, engine="vector")
    assert len(cache) == 1  # same engine object reused
    m = MetricsRegistry()
    simulate(instance, schedule, engine="vector", metrics=m)
    assert len(cache) == 1  # metrics runs never enter the cache


# ---------------------------------------------------------------------------
# no-numpy fallback
# ---------------------------------------------------------------------------


def test_no_numpy_fallback_still_exact(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    from repro.core.vecsim import numpy_available

    assert not numpy_available()
    rng = random.Random(2026)
    for _ in range(10):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        vec = VectorSimulator(instance)
        assert vec._np is None
        assert_results_equal(
            vec.evaluate(schedule, record_timeline=True),
            simulate(instance, schedule, record_timeline=True),
        )


def test_fallback_counters_match_numpy_path():
    rng = random.Random(2027)
    instance = random_instance(rng)
    schedule = random_schedule(instance, rng)
    mv, mp = MetricsRegistry(), MetricsRegistry()
    VectorSimulator(instance, metrics=mv).evaluate(schedule)
    plain = VectorSimulator(instance, metrics=mp)
    plain._np = None  # force the pure-Python path post-construction
    plain.evaluate(schedule)
    assert counters_of(mp) == counters_of(mv)


def random_calls_strategy():
    return st.lists(
        st.sampled_from(["f0", "f1", "f2"]), min_size=0, max_size=30
    )


@settings(max_examples=60, deadline=None)
@given(instances(max_functions=5, max_levels=3, max_calls=16), st.randoms())
def test_fallback_differential_hypothesis(instance, hyp_rng):
    rng = random.Random(hyp_rng.randrange(1 << 30))
    schedule = random_schedule(instance, rng)
    vec = VectorSimulator(instance)
    plain = VectorSimulator(instance)
    plain._np = None
    assert_results_equal(
        plain.evaluate(schedule, record_timeline=True),
        vec.evaluate(schedule, record_timeline=True),
    )
