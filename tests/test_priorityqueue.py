"""Tests for the priority-ordered compile queue."""

import pytest

from repro.core import FunctionProfile, OCSPInstance, lower_bound
from repro.vm.jikes import JikesScheme
from repro.vm.costbenefit import OracleModel
from repro.vm.priorityqueue import PriorityRuntimeSimulator, run_with_policy
from repro.vm.runtime import RuntimeSimulator
from repro.vm.v8 import V8Scheme


def honest_oracle(instance):
    return OracleModel(
        instance, hotness_optimism=1.0, hotness_sigma=0.0, hotness_floor=0.0
    )


class TestFifoEquivalence:
    """With the FIFO policy, the priority simulator must agree exactly
    with the greedy FIFO simulator."""

    def test_v8_hand_case(self):
        profiles = {"a": FunctionProfile("a", (2.0, 6.0), (5.0, 1.0))}
        inst = OCSPInstance(profiles, ("a",) * 4, name="pq")
        fifo = run_with_policy(inst, V8Scheme(), policy="fifo")
        assert fifo.makespan == 18.0
        assert fifo.calls_at_level == {0: 3, 1: 1}

    def test_matches_runtime_simulator(self, small_synthetic):
        scheme = JikesScheme(honest_oracle(small_synthetic))
        fifo_greedy = RuntimeSimulator(
            small_synthetic, scheme, sample_period=5.0
        ).run()
        scheme2 = JikesScheme(honest_oracle(small_synthetic))
        fifo_event = run_with_policy(
            small_synthetic, scheme2, policy="fifo", sample_period=5.0
        )
        assert fifo_event.makespan == pytest.approx(fifo_greedy.makespan)
        assert fifo_event.total_bubble_time == pytest.approx(
            fifo_greedy.total_bubble_time
        )

    def test_matches_with_two_threads(self, small_synthetic):
        scheme = JikesScheme(honest_oracle(small_synthetic))
        greedy = RuntimeSimulator(
            small_synthetic, scheme, compile_threads=2, sample_period=5.0
        ).run()
        event = run_with_policy(
            small_synthetic,
            JikesScheme(honest_oracle(small_synthetic)),
            policy="fifo",
            compile_threads=2,
            sample_period=5.0,
        )
        assert event.makespan == pytest.approx(greedy.makespan)


class _ScriptedScheme:
    """Deliberately creates queue contention: while the thread grinds
    hog's long recompile, warm's recompile and fresh's blocking first
    compile both queue up."""

    def initial_level(self, fname):
        return 0

    def on_call_start(self, runtime, fname, invocation, time):
        if fname == "hog" and invocation == 2:
            runtime.enqueue("hog", 1, time)
        if fname == "hog" and invocation == 3:
            runtime.enqueue("warm", 1, time)

    def on_sample(self, runtime, fname, k, time):
        pass


def _contention_instance():
    profiles = {
        "hog": FunctionProfile("hog", (1.0, 50.0), (5.0, 1.0)),
        "warm": FunctionProfile("warm", (1.0, 20.0), (5.0, 4.0)),
        "fresh": FunctionProfile("fresh", (4.0,), (5.0,)),
    }
    calls = ("hog", "warm", "hog", "hog", "fresh")
    return OCSPInstance(profiles, calls, name="contention")


class TestPriorityPolicies:
    def test_first_compile_jumps_the_queue(self):
        """With warm's recompile and fresh's first compile both queued
        behind hog's 50-unit recompile, FIFO serves the recompile first
        (fresh stalls); the first_compiles policy lets fresh jump."""
        inst = _contention_instance()
        fifo = run_with_policy(inst, _ScriptedScheme(), policy="fifo")
        prio = run_with_policy(inst, _ScriptedScheme(), policy="first_compiles")
        # Thread busy with hog1 [12,62].  Pending at 62: warm1 (arrived
        # 17), fresh0 (arrived 22).  FIFO: warm1 [62,82], fresh0
        # [82,86], exec fresh [86,91].  Priority: fresh0 [62,66], exec
        # fresh [66,71].
        assert fifo.makespan == 91.0
        assert prio.makespan == 71.0

    def test_dispatch_order_recorded(self):
        inst = _contention_instance()
        prio = run_with_policy(inst, _ScriptedScheme(), policy="first_compiles")
        tasks = [(t.function, t.level) for t in prio.schedule]
        assert tasks == [
            ("hog", 0), ("warm", 0), ("hog", 1), ("fresh", 0), ("warm", 1),
        ]

    def test_schedules_valid(self, small_synthetic):
        for policy in ("fifo", "first_compiles", "hotness"):
            result = run_with_policy(
                small_synthetic,
                JikesScheme(honest_oracle(small_synthetic)),
                policy=policy,
                sample_period=5.0,
            )
            result.schedule.validate(small_synthetic)
            assert result.makespan >= lower_bound(small_synthetic) - 1e-9
            assert result.makespan == pytest.approx(
                result.total_exec_time + result.total_bubble_time
            )

    def test_priority_never_delays_first_compiles(self, small_synthetic):
        """first_compiles policy: make-span should not exceed FIFO's by
        more than noise on this workload (first compiles dominate)."""
        fifo = run_with_policy(
            small_synthetic,
            JikesScheme(honest_oracle(small_synthetic)),
            policy="fifo",
            sample_period=5.0,
        )
        prio = run_with_policy(
            small_synthetic,
            JikesScheme(honest_oracle(small_synthetic)),
            policy="first_compiles",
            sample_period=5.0,
        )
        assert prio.makespan <= fifo.makespan * 1.05

    def test_bad_parameters(self, small_synthetic):
        with pytest.raises(ValueError):
            PriorityRuntimeSimulator(small_synthetic, V8Scheme(), policy="lifo")
        with pytest.raises(ValueError):
            PriorityRuntimeSimulator(
                small_synthetic, V8Scheme(), compile_threads=0
            )
        with pytest.raises(ValueError):
            PriorityRuntimeSimulator(
                small_synthetic, V8Scheme(), sample_period=0.0
            )

    def test_enqueue_validates_level(self, small_synthetic):
        sim = PriorityRuntimeSimulator(small_synthetic, V8Scheme())
        with pytest.raises(ValueError):
            sim.enqueue(small_synthetic.called_functions[0], 99, 0.0)
