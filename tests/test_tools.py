"""Tests for repository tooling (docs generation)."""

import importlib.util
from pathlib import Path


TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_gen_api_docs():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", TOOLS / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGenApiDocs:
    def test_all_modules_importable(self):
        gen = _load_gen_api_docs()
        import importlib

        for name in gen.MODULES:
            importlib.import_module(name)

    def test_describe_class_and_function(self):
        gen = _load_gen_api_docs()
        from repro.core import FunctionProfile, lower_bound

        cls_doc = gen.describe("FunctionProfile", FunctionProfile)
        assert cls_doc.startswith("### class `FunctionProfile")
        assert ".total_cost" in cls_doc
        fn_doc = gen.describe("lower_bound", lower_bound)
        assert fn_doc.startswith("### `lower_bound")

    def test_first_paragraph(self):
        gen = _load_gen_api_docs()
        from repro.core import simulate

        text = gen.first_paragraph(simulate)
        assert text.startswith("Simulate")
        assert "\n" not in text

    def test_generated_doc_exists_and_covers_modules(self):
        doc = (TOOLS.parent / "docs" / "API.md").read_text()
        gen = _load_gen_api_docs()
        for name in gen.MODULES:
            assert f"## `{name}`" in doc, f"{name} missing from docs/API.md"
