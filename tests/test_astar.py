"""Tests for A*-search (Section 5.3)."""

import math

import pytest

from repro.core import (
    AStarMemoryExceeded,
    FunctionProfile,
    OCSPInstance,
    astar_schedule,
    optimal_schedule,
    simulate,
)
from repro.workloads import WorkloadSpec, generate


class TestOptimality:
    def test_fig1(self, fig1_instance):
        result = astar_schedule(fig1_instance)
        assert result.makespan == 10.0

    def test_fig2(self, fig2_instance):
        result = astar_schedule(fig2_instance)
        assert result.makespan == 12.0

    def test_schedule_simulates_to_reported_makespan(self, fig2_instance):
        result = astar_schedule(fig2_instance)
        assert simulate(fig2_instance, result.schedule).makespan == result.makespan

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce_on_random_instances(self, seed):
        spec = WorkloadSpec(
            name=f"astar-{seed}",
            num_functions=3,
            num_calls=12,
            num_levels=2,
            base_compile_us=25.0,
            mean_exec_us=10.0,
            max_speedup_range=(1.5, 4.0),
        )
        inst = generate(spec, seed=seed)
        exact = optimal_schedule(inst)
        astar = astar_schedule(inst)
        assert astar.makespan == pytest.approx(exact.makespan)

    def test_prunes_search_space(self, fig2_instance):
        result = astar_schedule(fig2_instance)
        # The tree has paths_total full permutations; A* should expand
        # far fewer nodes than 5! would suggest.
        assert result.paths_total == 30  # 5!/(1!*2!*2!)
        assert result.nodes_expanded < 200


class TestPathsTotal:
    def test_multinomial(self):
        profiles = {
            f"f{i}": FunctionProfile(f"f{i}", (1.0, 2.0), (2.0, 1.0))
            for i in range(6)
        }
        calls = tuple(f"f{i}" for i in range(6))
        inst = OCSPInstance(profiles, calls)
        result = astar_schedule(inst, max_frontier=2_000_000)
        # 12 tasks, 2 per function: 12! / 2^6
        assert result.paths_total == math.factorial(12) // 2 ** 6


class TestMemoryBound:
    def test_frontier_blowup_raises(self):
        spec = WorkloadSpec(
            name="astar-big",
            num_functions=8,
            num_calls=60,
            num_levels=2,
            base_compile_us=25.0,
            mean_exec_us=10.0,
        )
        inst = generate(spec, seed=0)
        with pytest.raises(AStarMemoryExceeded) as info:
            astar_schedule(inst, max_frontier=2000)
        assert info.value.nodes_expanded > 0
        assert info.value.frontier_size > 2000

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError):
            astar_schedule(OCSPInstance({}, ()))
