"""Golden make-spans for the nine DaCapo preset traces.

``dacapo.load(name, scale=0.002)`` with the default per-benchmark seed
is fully deterministic, as are the Jikes/V8 replays and IAR.  These
frozen numbers pin the whole pipeline — trace generation, the runtime
schemes, the IAR heuristic, and the simulator — so any unintended
behavioural change (e.g. to the fast engine or the cost model) fails
loudly here rather than drifting silently.

If a change *intends* to alter these numbers, regenerate with::

    python - <<'EOF'
    from repro.workloads import dacapo
    from repro.vm.jikes import run_jikes
    from repro.vm.v8 import run_v8
    from repro.core import iar_schedule, simulate
    for name in dacapo.BENCHMARKS:
        inst = dacapo.load(name, scale=0.002)
        print(name, run_jikes(inst).makespan, run_v8(inst).makespan,
              simulate(inst, iar_schedule(inst)).makespan)
    EOF
"""

from __future__ import annotations

import pytest

from repro.core import iar_schedule, lower_bound, simulate
from repro.vm.jikes import run_jikes
from repro.vm.v8 import run_v8
from repro.workloads import dacapo

SCALE = 0.002

# benchmark: (jikes, v8, iar) make-spans at scale=0.002, default seeds
GOLDEN = {
    "antlr": (7998.285116027675, 10320.782096080462, 5706.27773381961),
    "bloat": (14772.834362927138, 19980.117589993402, 10180.989866813039),
    "eclipse": (67354.23086817712, 85722.66380550139, 38497.07619120722),
    "fop": (8649.24403379285, 12706.756486806065, 4741.807510075641),
    "hsqldb": (14748.437645921535, 15914.60791401179, 7863.945646444044),
    "jython": (62048.71018128233, 38867.46613921631, 22307.239091960993),
    "luindex": (17331.09284163353, 17644.168738811655, 10826.282943508399),
    "lusearch": (9644.813430081582, 16317.385451352364, 6260.296912204336),
    "pmd": (9515.909929174939, 16029.519621210578, 6148.793892315409),
}


# benchmark: (jikes, v8) sampler ticks that observed a function, at
# scale=0.002 with default seeds.  Pinned exactly: the arithmetic
# tick-skipping sampler must fire the very same ticks the former
# per-period loop did.
GOLDEN_SAMPLES = {
    "antlr": (386, 346),
    "bloat": (381, 336),
    "eclipse": (350, 458),
    "fop": (748, 500),
    "hsqldb": (335, 298),
    "jython": (862, 434),
    "luindex": (483, 380),
    "lusearch": (525, 318),
    "pmd": (616, 376),
}


def test_golden_covers_the_whole_suite():
    assert set(GOLDEN) == set(dacapo.BENCHMARKS)
    assert set(GOLDEN_SAMPLES) == set(dacapo.BENCHMARKS)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_trace_makespans(name):
    instance = dacapo.load(name, scale=SCALE)
    jikes, v8, iar = GOLDEN[name]
    assert run_jikes(instance).makespan == pytest.approx(jikes, rel=1e-9)
    assert run_v8(instance).makespan == pytest.approx(v8, rel=1e-9)
    assert simulate(instance, iar_schedule(instance)).makespan == pytest.approx(
        iar, rel=1e-9
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_ordering_iar_beats_both_runtimes(name):
    """On every preset, IAR lands between the lower bound and the
    reactive runtimes — the paper's headline ordering (Figure 5)."""
    instance = dacapo.load(name, scale=SCALE)
    jikes, v8, iar = GOLDEN[name]
    assert lower_bound(instance) <= iar
    assert iar < min(jikes, v8)


@pytest.mark.parametrize("name", sorted(GOLDEN_SAMPLES))
def test_golden_sampler_tick_counts(name):
    instance = dacapo.load(name, scale=SCALE)
    jikes_samples, v8_samples = GOLDEN_SAMPLES[name]
    assert run_jikes(instance).samples_taken == jikes_samples
    assert run_v8(instance).samples_taken == v8_samples


def test_repeated_loads_are_identical():
    a = dacapo.load("antlr", scale=SCALE)
    b = dacapo.load("antlr", scale=SCALE)
    assert a.calls == b.calls
    assert a.profiles == b.profiles


# ---------------------------------------------------------------------------
# full-length pins (scale 0.1, ~240k calls): the three engines must
# agree bitwise on a trace long enough to exercise every replay chunk
# path, and the absolute numbers are frozen.  Regenerate (after an
# intended change) with the docstring recipe, using scale=0.1.
# ---------------------------------------------------------------------------

FULL_SCALE = 0.1
# antlr @ scale=0.1, default seed: exact values, not approx.
FULL_GOLDEN_IAR = 341302.5746184745
FULL_GOLDEN_JIKES = 581049.4458593946
FULL_GOLDEN_V8 = 940845.9573871085
FULL_GOLDEN_SAMPLES = (229, 302)  # (jikes, v8)


@pytest.mark.parametrize("engine", ["reference", "fast", "vector"])
def test_full_length_iar_makespan_exact_per_engine(engine):
    instance = dacapo.load("antlr", scale=FULL_SCALE)
    schedule = iar_schedule(instance)
    result = simulate(instance, schedule, validate=False, engine=engine)
    assert result.makespan == FULL_GOLDEN_IAR


def test_full_length_runtime_pins():
    instance = dacapo.load("antlr", scale=FULL_SCALE)
    jikes = run_jikes(instance)
    v8 = run_v8(instance)
    assert jikes.makespan == FULL_GOLDEN_JIKES
    assert v8.makespan == FULL_GOLDEN_V8
    assert (jikes.samples_taken, v8.samples_taken) == FULL_GOLDEN_SAMPLES
