"""The ``repro instances`` CLI verbs and the ``--instance`` flags:
export/import/validate/list behavior, the bitwise export contract, and
the exit-2 ``instance:`` diagnostics."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.instances import read_bundle

FIXTURES = Path(__file__).parent / "fixtures"
IMPORTERS = FIXTURES / "importers"
INSTANCES = FIXTURES / "instances"


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def trace_path(tmp_path, capsys):
    path = tmp_path / "t.json"
    code, _, _ = run(
        capsys,
        "generate",
        "--functions", "4",
        "--calls", "40",
        "--levels", "3",
        "-o", str(path),
    )
    assert code == 0
    return path


@pytest.fixture()
def bundle_path(tmp_path, trace_path, capsys):
    out = tmp_path / "bundle"
    code, _, _ = run(
        capsys, "instances", "export", str(trace_path), "-o", str(out)
    )
    assert code == 0
    return out


@pytest.fixture()
def schedule_path(tmp_path, trace_path, capsys):
    path = tmp_path / "s.json"
    code, _, _ = run(
        capsys, "schedule", str(trace_path), "--algorithm", "iar",
        "-o", str(path),
    )
    assert code == 0
    return path


class TestExport:
    def test_export_prints_fingerprint(self, capsys, tmp_path, trace_path):
        out = tmp_path / "b"
        code, stdout, _ = run(
            capsys, "instances", "export", str(trace_path), "-o", str(out)
        )
        assert code == 0
        assert "fingerprint:" in stdout
        assert read_bundle(out).content_fingerprint() in stdout

    def test_export_benchmark(self, capsys, tmp_path):
        out = tmp_path / "b"
        code, stdout, _ = run(
            capsys,
            "instances", "export",
            "--benchmark", "antlr", "--scale", "0.002",
            "-o", str(out),
        )
        assert code == 0
        assert read_bundle(out).source == "synthetic"

    def test_re_export_is_byte_identical(
        self, capsys, tmp_path, bundle_path
    ):
        out = tmp_path / "again"
        code, _, _ = run(
            capsys, "instances", "export", str(bundle_path), "-o", str(out)
        )
        assert code == 0
        for path in sorted(bundle_path.iterdir()):
            assert path.read_bytes() == (out / path.name).read_bytes()

    def test_rename(self, capsys, tmp_path, trace_path):
        out = tmp_path / "b"
        code, _, _ = run(
            capsys,
            "instances", "export", str(trace_path),
            "--name", "renamed", "-o", str(out),
        )
        assert code == 0
        assert read_bundle(out).name == "renamed"

    def test_source_and_benchmark_conflict(self, capsys, trace_path, tmp_path):
        code, _, err = run(
            capsys,
            "instances", "export", str(trace_path),
            "--benchmark", "antlr", "-o", str(tmp_path / "b"),
        )
        assert code == 2
        assert err.startswith("repro: error:")

    def test_neither_source_nor_benchmark(self, capsys, tmp_path):
        code, _, err = run(
            capsys, "instances", "export", "-o", str(tmp_path / "b")
        )
        assert code == 2
        assert "exactly one" in err


class TestImport:
    @pytest.mark.parametrize(
        "fmt,source",
        [
            ("v8", IMPORTERS / "v8-trace-opt.log"),
            ("jvm", IMPORTERS / "jvm-print-compilation.log"),
            ("scc", IMPORTERS / "scc-small_mc_env.json"),
        ],
    )
    def test_import_writes_valid_bundle(self, capsys, tmp_path, fmt, source):
        out = tmp_path / "b"
        code, stdout, _ = run(
            capsys,
            "instances", "import", str(source),
            "--format", fmt, "-o", str(out),
        )
        assert code == 0
        assert "fingerprint:" in stdout
        vcode, vout, _ = run(capsys, "instances", "validate", str(out))
        assert vcode == 0
        assert "validated 1 bundle(s)" in vout

    def test_import_garbage_log_exits_2(self, capsys, tmp_path):
        src = tmp_path / "junk.log"
        src.write_text("nothing to see\n", encoding="utf-8")
        code, _, err = run(
            capsys,
            "instances", "import", str(src),
            "--format", "v8", "-o", str(tmp_path / "b"),
        )
        assert code == 2
        assert err.startswith("repro: error: instance:")
        assert err.count("\n") == 1  # one-line diagnostic


class TestValidate:
    def test_fixture_corpus_validates(self, capsys):
        paths = sorted(str(p) for p in INSTANCES.iterdir())
        assert len(paths) == 3
        code, stdout, _ = run(capsys, "instances", "validate", *paths)
        assert code == 0
        assert "validated 3 bundle(s)" in stdout

    def test_malformed_bundle_exits_2(self, capsys, tmp_path, bundle_path):
        manifest = bundle_path / "manifest.json"
        doc = json.loads(manifest.read_text(encoding="utf-8"))
        doc["format_version"] = 999
        manifest.write_text(json.dumps(doc), encoding="utf-8")
        code, _, err = run(
            capsys, "instances", "validate", str(bundle_path)
        )
        assert code == 2
        assert err.startswith("repro: error: instance:")
        assert err.count("\n") == 1

    def test_tampered_content_exits_2(self, capsys, bundle_path):
        calls = bundle_path / "calls.csv"
        text = calls.read_text(encoding="utf-8")
        lines = text.splitlines()
        calls.write_text(
            "\n".join(lines[:1] + lines[2:]) + "\n", encoding="utf-8"
        )
        code, _, err = run(
            capsys, "instances", "validate", str(bundle_path)
        )
        assert code == 2
        assert "instance:" in err


class TestList:
    def test_lists_fixture_corpus(self, capsys):
        code, stdout, _ = run(capsys, "instances", "list", str(INSTANCES))
        assert code == 0
        for name in ("v8-trace-opt", "jvm-print-compilation", "scc-small"):
            assert name in stdout

    def test_json_output(self, capsys, tmp_path):
        out = tmp_path / "rows.json"
        code, _, _ = run(
            capsys,
            "instances", "list", str(INSTANCES), "--json", str(out),
        )
        assert code == 0
        rows = json.loads(out.read_text(encoding="utf-8"))
        assert {row["name"] for row in rows} == {
            "v8-trace-opt", "jvm-print-compilation", "scc-small",
        }

    def test_empty_directory(self, capsys, tmp_path):
        code, stdout, _ = run(capsys, "instances", "list", str(tmp_path))
        assert code == 0
        assert "no bundles" in stdout


class TestInstanceFlags:
    def test_evaluate_instance_matches_trace(
        self, capsys, trace_path, bundle_path, schedule_path
    ):
        code_t, out_t, _ = run(
            capsys, "evaluate", str(trace_path), str(schedule_path)
        )
        code_b, out_b, _ = run(
            capsys,
            "evaluate", str(schedule_path), "--instance", str(bundle_path),
        )
        assert code_t == code_b == 0
        assert out_t == out_b  # same metrics, byte for byte

    def test_evaluate_requires_exactly_one_source(
        self, capsys, trace_path, bundle_path, schedule_path
    ):
        code, _, err = run(
            capsys,
            "evaluate", str(trace_path), str(schedule_path),
            "--instance", str(bundle_path),
        )
        assert code == 2
        assert "exactly one" in err
        code, _, err = run(capsys, "evaluate", str(schedule_path))
        assert code == 2

    def test_evaluate_prints_due_objectives(self, capsys, tmp_path):
        bundle = tmp_path / "scc"
        code, _, _ = run(
            capsys,
            "instances", "import", str(IMPORTERS / "scc-small_mc_env.json"),
            "--format", "scc", "-o", str(bundle),
        )
        assert code == 0
        instance = read_bundle(bundle).instance
        sched = tmp_path / "s.json"
        from repro.core import Schedule
        from repro.workloads import traces

        traces.save_schedule(
            Schedule.of(*((f, 0) for f in sorted(instance.profiles))),
            sched,
        )
        code, stdout, _ = run(
            capsys, "evaluate", str(sched), "--instance", str(bundle)
        )
        assert code == 0
        assert "due-date objectives" in stdout
        assert "max tardiness" in stdout

    def test_diagnose_instance(self, capsys, bundle_path, schedule_path):
        code, stdout, _ = run(
            capsys,
            "diagnose", str(schedule_path), "--instance", str(bundle_path),
        )
        assert code == 0
        assert "make-span" in stdout

    def test_study_instance(self, capsys, bundle_path, tmp_path):
        out = tmp_path / "rows.json"
        code, stdout, _ = run(
            capsys,
            "study", "--instance", str(bundle_path),
            "--figure", "fig5", "--json-out", str(out),
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        benchmarks = [row["benchmark"] for row in doc["rows"]["figure5"]]
        assert benchmarks == [read_bundle(bundle_path).name]

    def test_study_instance_rejects_preset_figures(self, capsys, bundle_path):
        code, _, err = run(
            capsys,
            "study", "--instance", str(bundle_path), "--figure", "table1",
        )
        assert code == 2
        assert "cannot run on --instance" in err

    def test_faults_sweep_instance(self, capsys, bundle_path, tmp_path):
        out = tmp_path / "sweep.json"
        code, _, _ = run(
            capsys,
            "faults", "sweep", "--instance", str(bundle_path),
            "--rates", "0,0.2", "--json-out", str(out),
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["rates"] == [0.0, 0.2]
        assert doc["rows"]

    def test_missing_bundle_exits_2(self, capsys, schedule_path, tmp_path):
        code, _, err = run(
            capsys,
            "evaluate", str(schedule_path),
            "--instance", str(tmp_path / "nope"),
        )
        assert code == 2
        assert err.startswith("repro: error: instance:")
