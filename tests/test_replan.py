"""Tests for preinstalled code and periodic replanning (Sections 8/9)."""

import pytest

from repro.core import FunctionProfile, OCSPInstance, Schedule, lower_bound, simulate
from repro.core.replan import replan_iar


class TestPreinstalled:
    def test_preinstalled_code_available_at_t0(self):
        profiles = {"a": FunctionProfile("a", (10.0, 50.0), (5.0, 1.0))}
        inst = OCSPInstance(profiles, ("a", "a"), name="pre")
        result = simulate(inst, Schedule.empty(), preinstalled={"a": 1})
        # No compiles, code ready: two calls at level 1.
        assert result.makespan == 2.0
        assert result.total_bubble_time == 0.0
        assert result.calls_at_level == {1: 2}

    def test_schedule_can_upgrade_preinstalled(self):
        profiles = {"a": FunctionProfile("a", (10.0, 50.0), (5.0, 1.0))}
        inst = OCSPInstance(profiles, ("a",) * 20, name="pre2")
        sched = Schedule.of(("a", 1))
        result = simulate(inst, sched, preinstalled={"a": 0})
        # Calls run at level 0 until the level-1 compile lands at 50.
        assert result.calls_at_level[0] == 10
        assert result.calls_at_level[1] == 10

    def test_uncovered_function_still_rejected(self):
        from repro.core import ScheduleError

        profiles = {
            "a": FunctionProfile("a", (1.0,), (1.0,)),
            "b": FunctionProfile("b", (1.0,), (1.0,)),
        }
        inst = OCSPInstance(profiles, ("a", "b"), name="pre3")
        with pytest.raises(ScheduleError):
            simulate(inst, Schedule.empty(), preinstalled={"a": 0})

    def test_bad_preinstalled_level(self):
        profiles = {"a": FunctionProfile("a", (1.0,), (1.0,))}
        inst = OCSPInstance(profiles, ("a",), name="pre4")
        with pytest.raises(ValueError):
            simulate(inst, Schedule.empty(), preinstalled={"a": 5})
        with pytest.raises(ValueError):
            simulate(inst, Schedule.empty(), preinstalled={"zzz": 0})

    def test_full_code_cache_reaches_top_speed(self, small_synthetic):
        """Section 9's persistent code cache: with everything
        preinstalled at the top level, the make-span IS the lower bound
        — the scheduling problem disappears."""
        cache = {
            f: small_synthetic.profiles[f].num_levels - 1
            for f in small_synthetic.called_functions
        }
        result = simulate(
            small_synthetic, Schedule.empty(), preinstalled=cache
        )
        assert result.makespan == pytest.approx(lower_bound(small_synthetic))


class TestReplanIAR:
    def test_one_segment_close_to_one_shot(self, small_synthetic):
        result = replan_iar(small_synthetic, time_error=0.5, segments=1, seed=3)
        # Same information, same planner; segment bookkeeping may skip
        # step-4 tail appends, so allow a small difference.
        assert result.makespan == pytest.approx(
            result.one_shot_makespan, rel=0.05
        )

    def test_replanning_recovers_loss(self, small_synthetic):
        one = replan_iar(small_synthetic, time_error=1.5, segments=1, seed=3)
        few = replan_iar(small_synthetic, time_error=1.5, segments=4, seed=3)
        assert few.makespan < one.makespan
        assert few.recovered > 0.2

    def test_bounds_respected(self, small_synthetic):
        result = replan_iar(small_synthetic, time_error=0.8, segments=3, seed=1)
        assert result.makespan >= result.lower_bound - 1e-6
        assert result.oracle_makespan >= result.lower_bound - 1e-6

    def test_bad_segments(self, small_synthetic):
        with pytest.raises(ValueError):
            replan_iar(small_synthetic, segments=0)

    def test_recovered_metric(self, small_synthetic):
        result = replan_iar(small_synthetic, time_error=1.0, segments=4, seed=2)
        assert result.recovered <= 1.5  # sanity: not absurd


class TestPreinstalledFastTail:
    def test_preinstalled_only_matches_timeline_path(self, small_synthetic):
        """With everything preinstalled and no schedule, the fast-tail
        summation must agree with the per-call timeline path."""
        cache = {f: 0 for f in small_synthetic.called_functions}
        fast = simulate(small_synthetic, Schedule.empty(), preinstalled=cache)
        slow = simulate(
            small_synthetic,
            Schedule.empty(),
            preinstalled=cache,
            record_timeline=True,
        )
        assert fast.makespan == pytest.approx(slow.makespan)
        assert fast.calls_at_level == slow.calls_at_level
