"""Tests for on-stack replacement simulation."""

import pytest

from repro.core import FunctionProfile, OCSPInstance, Schedule, simulate
from repro.core.osr import simulate_osr


@pytest.fixture()
def long_call_instance():
    """One long invocation whose upgrade lands mid-call.

    f: c=(1, 5), e=(10, 2).  Schedule C0(f), C1(f): compiles finish at
    1 and 6.  Without OSR the single call runs [1, 11] at level 0.
    With OSR: works at level-0 speed over [1, 6] (consuming 5/10 of the
    work), then the remaining half continues at level 1, taking
    0.5 * 2 = 1 → finish at 7.
    """
    profiles = {"f": FunctionProfile("f", (1.0, 5.0), (10.0, 2.0))}
    return OCSPInstance(profiles, ("f",), name="osr")


class TestHandComputed:
    def test_without_osr(self, long_call_instance):
        sched = Schedule.of(("f", 0), ("f", 1))
        assert simulate(long_call_instance, sched).makespan == 11.0

    def test_with_osr(self, long_call_instance):
        sched = Schedule.of(("f", 0), ("f", 1))
        result = simulate_osr(long_call_instance, sched)
        assert result.makespan == pytest.approx(7.0)
        assert result.calls_at_level == {1: 1}

    def test_switch_cost_charged(self, long_call_instance):
        sched = Schedule.of(("f", 0), ("f", 1))
        result = simulate_osr(long_call_instance, sched, switch_cost=0.5)
        assert result.makespan == pytest.approx(7.5)

    def test_no_switch_when_upgrade_misses_the_call(self, long_call_instance):
        # Upgrade only: the call blocks until 6 then runs at level 1.
        sched = Schedule.of(("f", 1))
        result = simulate_osr(long_call_instance, sched)
        # c1 alone finishes at 5; call runs [5, 7].
        assert result.makespan == pytest.approx(7.0)
        assert result.total_bubble_time == pytest.approx(5.0)


class TestInvariants:
    def test_never_slower_than_call_start_rule(self, small_synthetic):
        from repro.core.iar import iar_schedule
        from repro.core.single_level import base_level_schedule

        for sched in (
            iar_schedule(small_synthetic),
            base_level_schedule(small_synthetic),
        ):
            plain = simulate(small_synthetic, sched, validate=False).makespan
            osr = simulate_osr(small_synthetic, sched, validate=False).makespan
            assert osr <= plain + 1e-6

    def test_identical_when_no_recompiles(self, small_synthetic):
        from repro.core.single_level import base_level_schedule

        sched = base_level_schedule(small_synthetic)
        plain = simulate(small_synthetic, sched, validate=False)
        osr = simulate_osr(small_synthetic, sched, validate=False)
        assert osr.makespan == pytest.approx(plain.makespan)
        assert osr.total_bubble_time == pytest.approx(plain.total_bubble_time)

    def test_counts_every_call(self, small_synthetic):
        from repro.core.iar import iar_schedule

        result = simulate_osr(
            small_synthetic, iar_schedule(small_synthetic), validate=False
        )
        assert sum(result.calls_at_level.values()) == small_synthetic.num_calls

    def test_bad_parameters(self, long_call_instance):
        sched = Schedule.of(("f", 0))
        with pytest.raises(ValueError):
            simulate_osr(long_call_instance, sched, compile_threads=0)
        with pytest.raises(ValueError):
            simulate_osr(long_call_instance, sched, switch_cost=-1.0)

    def test_invalid_schedule_rejected(self, long_call_instance):
        from repro.core import ScheduleError

        with pytest.raises(ScheduleError):
            simulate_osr(long_call_instance, Schedule.empty())

    def test_two_switches_in_one_call(self):
        # Three levels landing successively during one long call.
        profiles = {"f": FunctionProfile("f", (1.0, 3.0, 6.0), (30.0, 10.0, 1.0))}
        inst = OCSPInstance(profiles, ("f",), name="osr3")
        sched = Schedule.of(("f", 0), ("f", 1), ("f", 2))
        # Compiles finish at 1, 4, 10.  Work: [1,4] at e=30 → 3/30 done;
        # [4,10] at e=10 → 6/10 done; remaining 1 - 0.1 - 0.6 = 0.3 at
        # e=1 → finish 10.3.
        result = simulate_osr(inst, sched)
        assert result.makespan == pytest.approx(10.3)
        assert result.calls_at_level == {2: 1}

    def test_eager_deep_compile_less_dangerous_with_osr(self):
        """The interpreter-runtime intuition: with OSR, scheduling the
        deep compile eagerly hurts much less, because the blocked work
        can run on the slow tier and upgrade in flight."""
        profiles = {
            "slowstart": FunctionProfile("slowstart", (1.0, 9.0), (20.0, 2.0)),
        }
        inst = OCSPInstance(profiles, ("slowstart",) * 3, name="eager")
        eager = Schedule.of(("slowstart", 0), ("slowstart", 1))
        plain = simulate(inst, eager).makespan
        osr = simulate_osr(inst, eager).makespan
        assert osr < plain
