"""The paper's worked examples and headline claims, as executable tests.

Each test cites the paper passage it verifies.  The Figure 1/2 cost
tables are reconstructed from the timing marks printed in the figures
(see ``tests/conftest.py``).
"""


from repro.core import (
    Schedule,
    astar_schedule,
    iar_schedule,
    lower_bound,
    optimal_schedule,
    simulate,
)
from repro.core.singlecore import single_core_optimal_makespan
from repro.workloads import WorkloadSpec, generate


class TestIntroductionExample:
    """Section 1: call sequence "a b g g g g e g" — switching C1(e)
    with C2(g) makes the better version of g available earlier."""

    def _instance(self):
        from repro.core import FunctionProfile, OCSPInstance

        profiles = {
            "a": FunctionProfile("a", (1.0,), (1.0,)),
            "b": FunctionProfile("b", (1.0,), (1.0,)),
            "e": FunctionProfile("e", (4.0,), (1.0,)),
            "g": FunctionProfile("g", (1.0, 6.0), (3.0, 1.0)),
        }
        calls = ("a", "b", "g", "g", "g", "g", "e", "g")
        return OCSPInstance(profiles, calls, name="intro")

    def test_switching_order_helps(self):
        inst = self._instance()
        before = Schedule.of(("a", 0), ("b", 0), ("g", 0), ("e", 0), ("g", 1))
        after = Schedule.of(("a", 0), ("b", 0), ("g", 0), ("g", 1), ("e", 0))
        assert (
            simulate(inst, after).makespan < simulate(inst, before).makespan
        )


class TestFigure1Narrative:
    def test_highest_level_first_is_tempting_but_worst(self, fig1_instance):
        """"It may be tempting to think that the best way ... is to pick
        the highest compilation levels for all the functions ... It
        turns out to result in the longest make-span among all the
        three schedules" (Section 4.2)."""
        s1 = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0))
        s2 = Schedule.of(("f0", 0), ("f1", 1), ("f2", 0))
        s3 = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))
        spans = [simulate(fig1_instance, s).makespan for s in (s1, s2, s3)]
        assert spans[1] == max(spans)
        assert spans[2] == min(spans)

    def test_compile_twice_strategy_wins_fig1(self, fig1_instance):
        """f1 compiled low first to avoid delays, then high to speed up
        its second invocation."""
        s3 = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))
        assert simulate(fig1_instance, s3).makespan == 10.0


class TestFigure2Narrative:
    def test_appending_flips_the_ranking(self, fig2_instance):
        """"This appending turns the previously best schedule (schedule
        3) to the worst ... The first schedule with such an appending
        becomes the best of the three" (Section 4.2)."""
        s1x = Schedule.of(
            ("f0", 0), ("f1", 0), ("f2", 0), ("f2", 1)
        )
        s2x = Schedule.of(("f0", 0), ("f1", 1), ("f2", 0), ("f2", 1))
        s3 = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))
        spans = {
            "s1x": simulate(fig2_instance, s1x).makespan,
            "s2x": simulate(fig2_instance, s2x).makespan,
            "s3": simulate(fig2_instance, s3).makespan,
        }
        assert spans["s1x"] == min(spans.values())
        assert spans["s3"] == max(spans.values())

    def test_s1x_recompiles_the_costliest_function(self, fig2_instance):
        """Paper: "This schedule has function f2 but not others
        recompiled, despite that f2 takes the longest time to
        recompile." """
        s1x = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f2", 1))
        prof = fig2_instance.profiles
        assert prof["f2"].compile_times[1] == max(
            p.compile_times[-1] for p in prof.values()
        )
        assert simulate(fig2_instance, s1x).makespan == 12.0


class TestHeadlineClaims:
    def test_optimal_beats_every_single_compilation_scheme(self, fig2_instance):
        opt = optimal_schedule(fig2_instance)
        assert opt.makespan == 12.0
        assert astar_schedule(fig2_instance).makespan == 12.0

    def test_multicore_beats_single_core(self, fig2_instance):
        """Parallel compilation+execution beats one core on this
        example (the reason multi-core OCSP is interesting at all)."""
        opt = optimal_schedule(fig2_instance)
        assert opt.makespan < single_core_optimal_makespan(fig2_instance)

    def test_iar_is_near_optimal_on_synthetic_workload(self):
        """Section 6.3: IAR produces near-optimal schedules.  On a
        mid-size synthetic trace its make-span must be within a small
        factor of the exec-only lower bound."""
        spec = WorkloadSpec(
            name="claim",
            num_functions=20,
            num_calls=20_000,
            num_levels=2,
            zipf_s=1.2,
            base_compile_us=20.0,
            mean_exec_us=2.0,
            level_compile_factors=(1.0, 15.0),
            max_speedup_range=(2.0, 6.0),
        )
        inst = generate(spec, seed=21)
        span = simulate(inst, iar_schedule(inst), validate=False).makespan
        assert span <= 1.15 * lower_bound(inst)
