"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.workloads import traces


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.json"
    code = main(
        [
            "generate",
            "--functions", "20",
            "--calls", "800",
            "--seed", "7",
            "-o", str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestGenerate:
    def test_synthetic(self, trace_file):
        inst = traces.load(trace_file)
        assert inst.num_calls == 800
        assert inst.num_functions == 20

    def test_benchmark_preset(self, tmp_path, capsys):
        path = tmp_path / "fop.json"
        code = main(
            ["generate", "--benchmark", "fop", "--scale", "0.002", "-o", str(path)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        inst = traces.load(path)
        assert inst.name == "fop"


class TestScheduleEvaluateDiagnose:
    @pytest.mark.parametrize(
        "algorithm", ["iar", "base", "opt", "hotness", "budget", "ondemand", "jikes", "v8"]
    )
    def test_all_algorithms(self, trace_file, tmp_path, algorithm):
        out = tmp_path / f"{algorithm}.json"
        assert main(
            ["schedule", str(trace_file), "--algorithm", algorithm, "-o", str(out)]
        ) == 0
        schedule = traces.load_schedule(out)
        instance = traces.load(trace_file)
        schedule.validate(instance)

    def test_evaluate(self, trace_file, tmp_path, capsys):
        out = tmp_path / "iar.json"
        main(["schedule", str(trace_file), "-o", str(out)])
        capsys.readouterr()
        assert main(["evaluate", str(trace_file), str(out)]) == 0
        text = capsys.readouterr().out
        assert "make-span" in text
        assert "normalized" in text

    def test_evaluate_with_threads(self, trace_file, tmp_path, capsys):
        out = tmp_path / "iar.json"
        main(["schedule", str(trace_file), "-o", str(out)])
        assert main(
            ["evaluate", str(trace_file), str(out), "--threads", "4"]
        ) == 0

    def test_diagnose(self, trace_file, tmp_path, capsys):
        out = tmp_path / "base.json"
        main(["schedule", str(trace_file), "--algorithm", "base", "-o", str(out)])
        capsys.readouterr()
        assert main(["diagnose", str(trace_file), str(out), "--top", "3"]) == 0
        text = capsys.readouterr().out
        assert "worst offenders" in text
        assert "never-upgraded" in text


class TestStudyAndWalkthrough:
    def test_study_table1(self, capsys):
        assert main(["study", "--figure", "table1", "--scale", "0.002"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_study_fig5(self, capsys):
        assert main(["study", "--figure", "fig5", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "average" in out

    def test_walkthrough(self, capsys):
        assert main(["walkthrough"]) == 0
        out = capsys.readouterr().out
        assert "make-span: 10.0" in out  # scheme s3
        assert "make-span: 11.0" in out  # scheme s1


class TestScheduleRoundTrip:
    def test_schedule_json_roundtrip(self, trace_file, tmp_path):
        out = tmp_path / "sched.json"
        main(["schedule", str(trace_file), "-o", str(out)])
        doc = json.loads(out.read_text())
        assert doc["version"] == 1
        schedule = traces.schedule_from_json(out.read_text())
        assert traces.schedule_to_json(schedule) == out.read_text()

    def test_bad_schedule_version(self):
        with pytest.raises(ValueError, match="version"):
            traces.schedule_from_json('{"version": 9, "tasks": []}')


class TestStudyAllFigures:
    @pytest.mark.parametrize("figure", ["fig6", "fig7", "fig8", "table2"])
    def test_each_figure_runs(self, capsys, figure):
        assert main(["study", "--figure", figure, "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert ("Figure" in out) or ("Table" in out)


class TestImportTrace:
    def test_import_and_schedule(self, tmp_path, capsys):
        log = tmp_path / "calls.log"
        costs = tmp_path / "costs.csv"
        log.write_text("alpha\nbeta\nalpha\n")
        costs.write_text("name,c0,c1,e0,e1\nalpha,10,100,5,1\nbeta,12,90,4,2\n")
        out = tmp_path / "trace.json"
        assert main(
            ["import-trace", str(log), str(costs), "-o", str(out)]
        ) == 0
        sched = tmp_path / "sched.json"
        assert main(["schedule", str(out), "-o", str(sched)]) == 0
        capsys.readouterr()
        assert main(["evaluate", str(out), str(sched)]) == 0
        assert "normalized" in capsys.readouterr().out


class TestTraceCommand:
    def test_chrome_trace_is_valid(self, tmp_path, capsys):
        from repro.observability import validate_chrome_trace

        out = tmp_path / "antlr.trace.json"
        code = main(
            [
                "trace", "antlr",
                "--scheme", "jikes",
                "--scale", "0.002",
                "-o", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "make-span" in text
        assert "execute" in text  # the per-track summary
        assert validate_chrome_trace(out.read_text()) > 0

    @pytest.mark.parametrize("scheme", ["iar", "v8"])
    def test_other_schemes(self, tmp_path, scheme):
        out = tmp_path / f"{scheme}.trace.json"
        assert main(
            [
                "trace", "fop",
                "--scheme", scheme,
                "--scale", "0.002",
                "-o", str(out),
            ]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_jsonl_format(self, tmp_path):
        out = tmp_path / "antlr.jsonl"
        assert main(
            [
                "trace", "antlr",
                "--scheme", "iar",
                "--scale", "0.002",
                "--format", "jsonl",
                "-o", str(out),
            ]
        ) == 0
        lines = out.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["kind"] for line in lines)

    def test_unknown_benchmark_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "nope", "-o", str(tmp_path / "x.json")]
            )


class TestDiagnoseIntervals:
    def test_interval_table_printed(self, trace_file, tmp_path, capsys):
        out = tmp_path / "base.json"
        main(["schedule", str(trace_file), "--algorithm", "base", "-o", str(out)])
        capsys.readouterr()
        assert main(
            ["diagnose", str(trace_file), str(out), "--intervals", "4"]
        ) == 0
        text = capsys.readouterr().out
        assert "gap by interval" in text

    def test_no_interval_table_by_default(self, trace_file, tmp_path, capsys):
        out = tmp_path / "base.json"
        main(["schedule", str(trace_file), "--algorithm", "base", "-o", str(out)])
        capsys.readouterr()
        assert main(["diagnose", str(trace_file), str(out)]) == 0
        assert "gap by interval" not in capsys.readouterr().out


class TestStudyTraceDir:
    def test_fig8_dumps_traces(self, tmp_path, capsys):
        from repro.observability import validate_chrome_trace

        trace_dir = tmp_path / "traces"
        assert main(
            [
                "study", "--figure", "fig8",
                "--scale", "0.002",
                "--trace-dir", str(trace_dir),
            ]
        ) == 0
        files = sorted(trace_dir.glob("figure8-*.trace.json"))
        assert len(files) == 9
        validate_chrome_trace(files[0].read_text())


class TestSeedContract:
    """One seed rule everywhere: omitted = stable per-benchmark default,
    an explicit integer — including 0 — is always honored."""

    def _load(self, tmp_path, *argv):
        path = tmp_path / "out.json"
        assert main(["generate", *argv, "-o", str(path)]) == 0
        return traces.load(path)

    def test_explicit_zero_is_not_treated_as_omitted(self, tmp_path):
        from repro.workloads import dacapo

        seeded = self._load(
            tmp_path, "--benchmark", "fop", "--scale", "0.002", "--seed", "0"
        )
        default = self._load(tmp_path, "--benchmark", "fop", "--scale", "0.002")
        assert seeded.calls != default.calls, (
            "--seed 0 must mean seed 0, not the per-benchmark default"
        )
        assert default.calls == dacapo.load("fop", scale=0.002).calls
        assert seeded.calls == dacapo.load("fop", scale=0.002, seed=0).calls

    def test_omitted_seed_is_stable_across_invocations(self, tmp_path):
        a = self._load(tmp_path, "--benchmark", "fop", "--scale", "0.002")
        b = self._load(tmp_path, "--benchmark", "fop", "--scale", "0.002")
        assert a.calls == b.calls

    def test_synthetic_defaults_to_seed_zero(self, tmp_path):
        omitted = self._load(tmp_path, "--functions", "10", "--calls", "50")
        explicit = self._load(
            tmp_path, "--functions", "10", "--calls", "50", "--seed", "0"
        )
        assert omitted.calls == explicit.calls

    def test_trace_and_generate_share_the_default(self, tmp_path, capsys):
        # Both commands must sample the same instance when the seed is
        # omitted (they historically disagreed: None vs 0).
        gen = self._load(tmp_path, "--benchmark", "antlr", "--scale", "0.002")
        trace_path = tmp_path / "antlr.trace.json"
        assert main(
            ["trace", "antlr", "--scale", "0.002", "-o", str(trace_path)]
        ) == 0
        capsys.readouterr()
        from repro.workloads import dacapo

        assert gen.calls == dacapo.load("antlr", scale=0.002).calls


class TestStudyCache:
    def test_warm_run_is_all_hits_and_identical(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        base = [
            "study", "--figure", "fig5", "--scale", "0.002",
            "--cache-dir", store, "--strict",
        ]
        assert main(base + ["--json-out", str(cold_json)]) == 0
        cold_out = capsys.readouterr().out
        assert "cache: 0 hits / 9 misses" in cold_out

        assert main(base + ["--json-out", str(warm_json)]) == 0
        warm_out = capsys.readouterr().out
        assert "cache: 9 hits / 0 misses" in warm_out
        assert "9 cached" in warm_out

        cold = json.loads(cold_json.read_text())
        warm = json.loads(warm_json.read_text())
        assert cold["rows"] == warm["rows"]
        assert warm["cache_misses"] == 0
        assert set(warm["statuses"].values()) == {"cached"}

    def test_resume_flag_accepts_existing_checkpoint(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = [
            "study", "--figure", "fig5", "--scale", "0.002",
            "--cache-dir", store, "--resume",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cache: 9 hits / 0 misses" in capsys.readouterr().out


class TestCacheCommand:
    def _populate(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            [
                "study", "--figure", "fig5", "--scale", "0.002",
                "--cache-dir", store,
            ]
        ) == 0
        capsys.readouterr()
        return store

    def test_stats(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(["cache", "stats", "--cache-dir", store]) == 0
        out = capsys.readouterr().out
        assert "entries:     9" in out
        assert "figure5: 9" in out

    def test_gc_current_code_keeps_fresh_entries(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(
            [
                "cache", "gc", "--cache-dir", store,
                "--current-code-only", "--max-age-days", "30",
            ]
        ) == 0
        assert "removed 0 file(s)" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(["cache", "clear", "--cache-dir", store]) == 0
        assert "removed 9" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", store]) == 0
        assert "entries:     0" in capsys.readouterr().out
