"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.workloads import traces


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.json"
    code = main(
        [
            "generate",
            "--functions", "20",
            "--calls", "800",
            "--seed", "7",
            "-o", str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestGenerate:
    def test_synthetic(self, trace_file):
        inst = traces.load(trace_file)
        assert inst.num_calls == 800
        assert inst.num_functions == 20

    def test_benchmark_preset(self, tmp_path, capsys):
        path = tmp_path / "fop.json"
        code = main(
            ["generate", "--benchmark", "fop", "--scale", "0.002", "-o", str(path)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        inst = traces.load(path)
        assert inst.name == "fop"


class TestScheduleEvaluateDiagnose:
    @pytest.mark.parametrize(
        "algorithm", ["iar", "base", "opt", "hotness", "budget", "ondemand", "jikes", "v8"]
    )
    def test_all_algorithms(self, trace_file, tmp_path, algorithm):
        out = tmp_path / f"{algorithm}.json"
        assert main(
            ["schedule", str(trace_file), "--algorithm", algorithm, "-o", str(out)]
        ) == 0
        schedule = traces.load_schedule(out)
        instance = traces.load(trace_file)
        schedule.validate(instance)

    def test_evaluate(self, trace_file, tmp_path, capsys):
        out = tmp_path / "iar.json"
        main(["schedule", str(trace_file), "-o", str(out)])
        capsys.readouterr()
        assert main(["evaluate", str(trace_file), str(out)]) == 0
        text = capsys.readouterr().out
        assert "make-span" in text
        assert "normalized" in text

    def test_evaluate_with_threads(self, trace_file, tmp_path, capsys):
        out = tmp_path / "iar.json"
        main(["schedule", str(trace_file), "-o", str(out)])
        assert main(
            ["evaluate", str(trace_file), str(out), "--threads", "4"]
        ) == 0

    def test_diagnose(self, trace_file, tmp_path, capsys):
        out = tmp_path / "base.json"
        main(["schedule", str(trace_file), "--algorithm", "base", "-o", str(out)])
        capsys.readouterr()
        assert main(["diagnose", str(trace_file), str(out), "--top", "3"]) == 0
        text = capsys.readouterr().out
        assert "worst offenders" in text
        assert "never-upgraded" in text


class TestStudyAndWalkthrough:
    def test_study_table1(self, capsys):
        assert main(["study", "--figure", "table1", "--scale", "0.002"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_study_fig5(self, capsys):
        assert main(["study", "--figure", "fig5", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "average" in out

    def test_walkthrough(self, capsys):
        assert main(["walkthrough"]) == 0
        out = capsys.readouterr().out
        assert "make-span: 10.0" in out  # scheme s3
        assert "make-span: 11.0" in out  # scheme s1


class TestScheduleRoundTrip:
    def test_schedule_json_roundtrip(self, trace_file, tmp_path):
        out = tmp_path / "sched.json"
        main(["schedule", str(trace_file), "-o", str(out)])
        doc = json.loads(out.read_text())
        assert doc["version"] == 1
        schedule = traces.schedule_from_json(out.read_text())
        assert traces.schedule_to_json(schedule) == out.read_text()

    def test_bad_schedule_version(self):
        with pytest.raises(ValueError, match="version"):
            traces.schedule_from_json('{"version": 9, "tasks": []}')


class TestStudyAllFigures:
    @pytest.mark.parametrize("figure", ["fig6", "fig7", "fig8", "table2"])
    def test_each_figure_runs(self, capsys, figure):
        assert main(["study", "--figure", figure, "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert ("Figure" in out) or ("Table" in out)


class TestImportTrace:
    def test_import_and_schedule(self, tmp_path, capsys):
        log = tmp_path / "calls.log"
        costs = tmp_path / "costs.csv"
        log.write_text("alpha\nbeta\nalpha\n")
        costs.write_text("name,c0,c1,e0,e1\nalpha,10,100,5,1\nbeta,12,90,4,2\n")
        out = tmp_path / "trace.json"
        assert main(
            ["import-trace", str(log), str(costs), "-o", str(out)]
        ) == 0
        sched = tmp_path / "sched.json"
        assert main(["schedule", str(out), "-o", str(sched)]) == 0
        capsys.readouterr()
        assert main(["evaluate", str(out), str(sched)]) == 0
        assert "normalized" in capsys.readouterr().out


class TestTraceCommand:
    def test_chrome_trace_is_valid(self, tmp_path, capsys):
        from repro.observability import validate_chrome_trace

        out = tmp_path / "antlr.trace.json"
        code = main(
            [
                "trace", "antlr",
                "--scheme", "jikes",
                "--scale", "0.002",
                "-o", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "make-span" in text
        assert "execute" in text  # the per-track summary
        assert validate_chrome_trace(out.read_text()) > 0

    @pytest.mark.parametrize("scheme", ["iar", "v8"])
    def test_other_schemes(self, tmp_path, scheme):
        out = tmp_path / f"{scheme}.trace.json"
        assert main(
            [
                "trace", "fop",
                "--scheme", scheme,
                "--scale", "0.002",
                "-o", str(out),
            ]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_jsonl_format(self, tmp_path):
        out = tmp_path / "antlr.jsonl"
        assert main(
            [
                "trace", "antlr",
                "--scheme", "iar",
                "--scale", "0.002",
                "--format", "jsonl",
                "-o", str(out),
            ]
        ) == 0
        lines = out.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["kind"] for line in lines)

    def test_unknown_benchmark_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "nope", "-o", str(tmp_path / "x.json")]
            )


class TestDiagnoseIntervals:
    def test_interval_table_printed(self, trace_file, tmp_path, capsys):
        out = tmp_path / "base.json"
        main(["schedule", str(trace_file), "--algorithm", "base", "-o", str(out)])
        capsys.readouterr()
        assert main(
            ["diagnose", str(trace_file), str(out), "--intervals", "4"]
        ) == 0
        text = capsys.readouterr().out
        assert "gap by interval" in text

    def test_no_interval_table_by_default(self, trace_file, tmp_path, capsys):
        out = tmp_path / "base.json"
        main(["schedule", str(trace_file), "--algorithm", "base", "-o", str(out)])
        capsys.readouterr()
        assert main(["diagnose", str(trace_file), str(out)]) == 0
        assert "gap by interval" not in capsys.readouterr().out


class TestStudyTraceDir:
    def test_fig8_dumps_traces(self, tmp_path, capsys):
        from repro.observability import validate_chrome_trace

        trace_dir = tmp_path / "traces"
        assert main(
            [
                "study", "--figure", "fig8",
                "--scale", "0.002",
                "--trace-dir", str(trace_dir),
            ]
        ) == 0
        files = sorted(trace_dir.glob("figure8-*.trace.json"))
        assert len(files) == 9
        validate_chrome_trace(files[0].read_text())
