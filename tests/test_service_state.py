"""The decision engine: policy, tenancy, cache, and fault parity.

The service's promotion test must agree with the Jikes cost/benefit
model, its degradation chain must agree with the reactive runtime's
(same ``(function, level, attempt)`` fault keys, same tallies), a
zero-rate fault spec must be bitwise indistinguishable from no spec at
all, and the shared decision cache must never change a decision *or* a
fault summary.
"""

from __future__ import annotations

import json

import pytest

from repro.core import FunctionProfile, OCSPInstance
from repro.faults.injector import FaultInjector
from repro.observability import MetricsRegistry
from repro.service import (
    DecisionCache,
    DecisionEngine,
    ServicePolicy,
    promotion_level,
)
from repro.vm.costbenefit import OracleModel

PROFILES = {
    "hot": FunctionProfile("hot", (1.0, 5.0, 20.0), (10.0, 3.0, 1.0)),
    "cold": FunctionProfile("cold", (1.0, 8.0), (2.0, 1.9)),
    "flat": FunctionProfile("flat", (1.0, 2.0), (1.0, 1.0)),
}


def _events(profile, calls, tenant="t0"):
    out = [
        {
            "op": "profile",
            "tenant": tenant,
            "function": profile.name,
            "compile_times": list(profile.compile_times),
            "exec_times": list(profile.exec_times),
        }
    ]
    for seq in range(calls):
        out.append(
            {
                "op": "call",
                "tenant": tenant,
                "function": profile.name,
                "seq": seq,
            }
        )
    return out


def _drain(engine, events):
    return [r for r in map(engine.observe, events) if r is not None]


# ---------------------------------------------------------------------------
# promotion_level ≡ CostBenefitModel.recompilation_level
# ---------------------------------------------------------------------------
class TestPromotionLevel:
    def test_matches_oracle_model_on_a_grid(self):
        instance = OCSPInstance(PROFILES, tuple(PROFILES) * 4, name="grid")
        model = OracleModel(
            instance, hotness_optimism=1.0, hotness_sigma=0.0,
            hotness_floor=0.0,
        )
        for fname, profile in PROFILES.items():
            for current in range(profile.num_levels):
                for k in (0.0, 0.5, 1.0, 3.0, 10.0, 1e4):
                    assert promotion_level(profile, current, k) == (
                        model.recompilation_level(fname, current, k)
                    ), (fname, current, k)

    def test_top_level_never_promotes(self):
        assert promotion_level(PROFILES["hot"], 2, 1e9) is None

    def test_flat_profile_never_promotes(self):
        # No level is faster, so no future is hot enough.
        assert promotion_level(PROFILES["flat"], 0, 1e9) is None


# ---------------------------------------------------------------------------
# Tenancy: LRU budgets
# ---------------------------------------------------------------------------
class TestTenantEviction:
    def test_cold_functions_are_evicted_and_restart(self):
        metrics = MetricsRegistry()
        engine = DecisionEngine(
            policy=ServicePolicy(max_functions=2), metrics=metrics
        )
        profiles = [
            FunctionProfile(f"f{i}", (1.0,), (1.0,)) for i in range(3)
        ]
        for p in profiles:
            _drain(engine, _events(p, calls=1))
        # f0 was coldest and fell off; a new call must re-profile it.
        with pytest.raises(ValueError, match="unregistered function"):
            engine.observe({"op": "call", "tenant": "t0", "function": "f0"})
        assert metrics.counter("service.evictions.functions").value == 1

    def test_tenant_budget_is_per_shard_lru(self):
        metrics = MetricsRegistry()
        engine = DecisionEngine(
            policy=ServicePolicy(max_tenants=1), shards=1, metrics=metrics
        )
        p = PROFILES["hot"]
        _drain(engine, _events(p, calls=1, tenant="a"))
        _drain(engine, _events(p, calls=1, tenant="b"))
        assert metrics.counter("service.evictions.tenants").value == 1
        assert sum(len(s) for s in engine.shards) == 1

    def test_unknown_op_and_missing_tenant_raise(self):
        engine = DecisionEngine()
        with pytest.raises(ValueError, match="unknown event op"):
            engine.observe({"op": "mystery", "tenant": "t0"})
        with pytest.raises(ValueError, match="missing tenant"):
            engine.observe({"op": "call", "function": "f"})


# ---------------------------------------------------------------------------
# Satellite 3: zero-rate specs are bitwise fault-free on the service path
# ---------------------------------------------------------------------------
class TestZeroRateSpec:
    def test_normalized_to_no_injector_like_the_runtime(self):
        engine = DecisionEngine(faults="compile_fail=0.0,seed=7")
        assert engine.faults is None

    def test_decision_stream_is_bitwise_equal_to_fault_free(self):
        events = _events(PROFILES["hot"], calls=50)
        clean = _drain(DecisionEngine(), list(events))
        zeroed = _drain(
            DecisionEngine(faults="compile_fail=0.0,stall=0.0,seed=7"),
            list(events),
        )
        assert json.dumps(clean, sort_keys=True) == json.dumps(
            zeroed, sort_keys=True
        )

    def test_zero_rate_emits_no_fault_metrics(self):
        metrics = MetricsRegistry()
        engine = DecisionEngine(
            faults="compile_fail=0.0,seed=7", metrics=metrics
        )
        _drain(engine, _events(PROFILES["hot"], calls=50))
        assert not [
            name for name in metrics.snapshot() if name.startswith("faults.")
        ]


# ---------------------------------------------------------------------------
# Satellite 3: fault tallies flow on the service path
# ---------------------------------------------------------------------------
SPEC = "compile_fail=0.3,retries=1,seed=5"


class TestServiceFaultPath:
    def test_tallies_reach_metrics_and_summary(self):
        metrics = MetricsRegistry()
        engine = DecisionEngine(faults=SPEC, metrics=metrics)
        _drain(engine, _events(PROFILES["hot"], calls=200))
        summary = engine.summary()["faults"]
        assert summary["compile_failures"] > 0
        snap = metrics.snapshot()
        assert (
            snap["faults.compile_failures"] == summary["compile_failures"]
        )
        assert snap["faults.retries"] == summary["retries"]

    def test_deterministic_across_engines(self):
        events = _events(PROFILES["hot"], calls=200)
        a = DecisionEngine(faults=SPEC)
        b = DecisionEngine(faults=SPEC)
        ra = _drain(a, list(events))
        rb = _drain(b, list(events))
        assert ra == rb
        assert a.summary() == b.summary()

    def test_first_install_is_guaranteed_at_level_zero(self):
        # must_install + retries exhausted + level 0 is the fail-safe:
        # every function ends up installed, never stuck uncompiled.
        engine = DecisionEngine(faults="compile_fail=1.0,retries=2,seed=0")
        records = _drain(engine, _events(PROFILES["hot"], calls=3))
        first = records[0]
        assert first["action"] == "compile"
        assert first["level"] == 0
        assert first["attempts"] == 3  # 2 failed tries + the fail-safe
        assert engine.summary()["faults"]["forced_installs"] == 1


# ---------------------------------------------------------------------------
# Degradation-chain parity with RuntimeSimulator._enqueue_faulty
# ---------------------------------------------------------------------------
def _reference_chain(injector, profile, fname, level, must_install, achieved):
    """A transcription of the runtime's chain (vm/runtime.py), minus
    the clock: the service's verdicts must match it draw for draw."""
    spec = injector.spec
    lvl, attempt = level, 1
    while True:
        if not must_install and lvl <= achieved:
            injector.note_fallback()
            return "fallback", achieved, attempt - 1
        c = profile.compile_times[lvl]
        factor = injector.compile_time_factor(fname, lvl, attempt)
        if factor != 1.0:
            c *= factor
        guaranteed = must_install and attempt > spec.retries and lvl == 0
        failed = not guaranteed and injector.compile_fails(
            fname, lvl, attempt
        )
        if not failed:
            if must_install and attempt > spec.retries:
                injector.note_forced_install()
            return "compile", lvl, attempt
        injector.note_wasted(c)
        if attempt > spec.retries and not must_install:
            injector.note_fallback()
            return "fallback", achieved, attempt
        if attempt <= spec.retries:
            injector.note_retry()
            lvl = max(0, lvl - 1)
        else:
            lvl = 0
        attempt += 1


@pytest.mark.parametrize(
    "spec",
    [
        "compile_fail=0.5,retries=0,seed=1",
        "compile_fail=0.5,retries=2,seed=2",
        "compile_fail=1.0,retries=1,seed=3",
        "compile_fail=0.3,stall=0.4,stall_factor=3.0,retries=2,seed=4",
    ],
)
@pytest.mark.parametrize("must_install,achieved", [(True, -1), (False, 0)])
def test_degrade_matches_runtime_chain(spec, must_install, achieved):
    profile = PROFILES["hot"]
    for fname in ("hot", "other", "hot"):  # repeat: keys include attempt
        for level in range(1, profile.num_levels):
            engine = DecisionEngine(faults=spec)
            action, lvl, attempts, delta, wasted = engine._degrade(
                fname, profile, level, must_install, achieved
            )
            ref = FaultInjector(spec)
            r_action, r_lvl, r_attempts = _reference_chain(
                ref, profile, fname, level, must_install, achieved
            )
            assert (action, lvl, attempts) == (r_action, r_lvl, r_attempts)
            assert engine.faults.tally == ref.tally
            assert engine.faults.wasted_compile_time == pytest.approx(
                ref.wasted_compile_time
            )
            # the cached delta is exactly the diff the chain produced
            assert delta == {
                k: v for k, v in ref.tally.items() if v
            }
            assert wasted == pytest.approx(ref.wasted_compile_time)


# ---------------------------------------------------------------------------
# The shared decision cache
# ---------------------------------------------------------------------------
def _strip(records):
    """The tenant-independent decision columns."""
    return [
        {k: r[k] for k in ("call", "action", "level", "attempts")}
        for r in records
    ]


class TestDecisionCache:
    def test_cross_tenant_hits_and_identical_decisions(self):
        cache = DecisionCache()
        engine = DecisionEngine(faults=SPEC, cache=cache)
        a = _drain(engine, _events(PROFILES["hot"], calls=100, tenant="a"))
        hits_before = cache.hits
        b = _drain(engine, _events(PROFILES["hot"], calls=100, tenant="b"))
        assert cache.hits > hits_before
        assert _strip(a) == _strip(b)

    def test_cache_replays_fault_tallies_bitwise(self):
        events = _events(PROFILES["hot"], calls=100, tenant="a") + _events(
            PROFILES["hot"], calls=100, tenant="b"
        )
        cached = DecisionEngine(faults=SPEC, cache=DecisionCache())
        uncached = DecisionEngine(faults=SPEC)
        rc = _drain(cached, list(events))
        ru = _drain(uncached, list(events))
        assert cached.cache.hits > 0
        assert _strip(rc) == _strip(ru)
        # the whole point: summaries including the wasted-time float
        # are bitwise identical whether or not the cache served
        assert cached.summary()["faults"] == uncached.summary()["faults"]

    def test_lru_bound_holds(self):
        cache = DecisionCache(max_entries=4)
        engine = DecisionEngine(cache=cache)
        for i in range(10):
            _drain(
                engine,
                _events(
                    FunctionProfile(f"f{i}", (1.0, 2.0), (5.0, 1.0)),
                    calls=3,
                ),
            )
        assert len(cache.entries) <= 4

    def test_replay_tally_rejects_unknown_keys(self):
        injector = FaultInjector("compile_fail=0.5,seed=0")
        with pytest.raises(KeyError):
            injector.replay_tally({"not_a_tally": 1})
