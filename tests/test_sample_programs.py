"""Tests for the realistic sample programs (sorting, matmul, hashing)."""

import pytest

from repro.core import iar_schedule, lower_bound, simulate
from repro.jitsim import (
    Interpreter,
    extract_instance,
    hashing_program,
    inline_program,
    matmul_program,
    sorting_program,
)
from repro.jitsim.bytecode import BytecodeError


class TestSortingProgram:
    def test_runs_and_returns_round_count(self):
        trace = Interpreter(sorting_program(rounds=15)).run()
        assert trace.result == 15  # driver returns iterations executed

    def test_kernel_dominates_trace(self):
        trace = Interpreter(sorting_program(rounds=50)).run()
        seq = trace.call_sequence
        assert seq.count("sort_kernel") == 50

    def test_kernel_actually_sorts(self):
        # The kernel returns the median of the sorted pseudo-array; it
        # must be deterministic and stable across repeated runs.
        a = Interpreter(sorting_program(rounds=5)).run()
        b = Interpreter(sorting_program(rounds=5)).run()
        assert [r.instructions for r in a.invocations] == [
            r.instructions for r in b.invocations
        ]

    def test_bad_array_size(self):
        with pytest.raises(BytecodeError):
            sorting_program(array_size=1)

    def test_branchy_kernel_is_big(self):
        prog = sorting_program(array_size=8)
        assert prog.functions["sort_kernel"].size > 100


class TestMatmulProgram:
    def test_runs(self):
        trace = Interpreter(matmul_program(size=3, rounds=8)).run()
        assert trace.result == 8

    def test_call_structure(self):
        size, rounds = 3, 8
        trace = Interpreter(matmul_program(size=size, rounds=rounds)).run()
        seq = trace.call_sequence
        assert seq.count("mat_once") == rounds
        assert seq.count("dot_row") == rounds * size * size

    def test_dot_row_is_inlinable_target(self):
        prog = matmul_program(size=3)
        inlined = inline_program(prog, max_callee_size=64)
        assert not inlined.functions["mat_once"].call_targets()
        assert (
            Interpreter(inlined).run().result
            == Interpreter(prog).run().result
        )

    def test_bad_size(self):
        with pytest.raises(BytecodeError):
            matmul_program(size=1)


class TestHashingProgram:
    def test_deterministic_hash(self):
        a = Interpreter(hashing_program(items=200)).run()
        b = Interpreter(hashing_program(items=200)).run()
        assert a.result == b.result

    def test_alternating_leaves(self):
        trace = Interpreter(hashing_program(items=100)).run()
        seq = [f for f in trace.call_sequence if f != "main"]
        assert seq[0::2] == ["next_item"] * 100
        assert seq[1::2] == ["mix_hash"] * 100


class TestSchedulingOnSamplePrograms:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: sorting_program(rounds=200),
            lambda: matmul_program(size=3, rounds=50),
            lambda: hashing_program(items=2000),
        ],
    )
    def test_end_to_end(self, builder):
        inst = extract_instance(builder(), name="sample")
        sched = iar_schedule(inst)
        sched.validate(inst)
        assert simulate(inst, sched, validate=False).makespan >= lower_bound(inst)
