"""Property tests of the fault layer (hypothesis).

Three invariants the degradation machinery must hold on *any* instance:

* a fault-injected make-span never beats the clean lower bound (faults
  only add work);
* the recorded timeline stays physically consistent (calls execute
  back-to-back, compile attempts fit their charged durations);
* the reference and fast engines agree bitwise on degraded plans, and a
  re-run under the same seed reproduces every number.
"""

from __future__ import annotations

import random
from typing import Dict, List

from hypothesis import given, settings, strategies as st

from repro.core import (
    CompileTask,
    FastSimulator,
    FunctionProfile,
    OCSPInstance,
    Schedule,
    lower_bound,
    simulate,
)
from repro.faults import FaultInjector, FaultSpec, apply_to_schedule, simulate_with_faults

times = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)


@st.composite
def instances(draw, max_functions=6, max_levels=4, max_calls=20):
    n_funcs = draw(st.integers(min_value=1, max_value=max_functions))
    profiles: Dict[str, FunctionProfile] = {}
    for i in range(n_funcs):
        n_levels = draw(st.integers(min_value=1, max_value=max_levels))
        compile_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels))
        )
        exec_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels)),
            reverse=True,
        )
        name = f"f{i}"
        profiles[name] = FunctionProfile(
            name, tuple(compile_times), tuple(exec_times)
        )
    names = sorted(profiles)
    calls = draw(
        st.lists(st.sampled_from(names), min_size=1, max_size=max_calls)
    )
    return OCSPInstance(profiles, tuple(calls), name="prop")


def random_schedule(instance: OCSPInstance, rng: random.Random) -> Schedule:
    """A random valid schedule: strictly increasing level chain per
    called function, chains interleaved randomly."""
    chains: List[List[CompileTask]] = []
    for fname in instance.called_functions:
        levels = sorted(
            rng.sample(
                range(instance.profiles[fname].num_levels),
                rng.randint(1, instance.profiles[fname].num_levels),
            )
        )
        chains.append([CompileTask(fname, lvl) for lvl in levels])
    tasks: List[CompileTask] = []
    while chains:
        chain = rng.choice(chains)
        tasks.append(chain.pop(0))
        if not chain:
            chains.remove(chain)
    return Schedule(tuple(tasks))


fault_specs = st.builds(
    FaultSpec,
    compile_fail=st.floats(min_value=0.0, max_value=1.0),
    stall=st.floats(min_value=0.0, max_value=1.0),
    stall_factor=st.floats(min_value=1.0, max_value=8.0),
    retries=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=999),
)


@settings(max_examples=80, deadline=None)
@given(instances(), fault_specs, st.randoms())
def test_faulty_makespan_at_least_lower_bound(instance, spec, hyp_rng):
    rng = random.Random(hyp_rng.randrange(1 << 30))
    schedule = random_schedule(instance, rng)
    result, _ = simulate_with_faults(instance, schedule, spec)
    assert result.makespan >= lower_bound(instance)


@settings(max_examples=80, deadline=None)
@given(instances(), fault_specs, st.randoms())
def test_timeline_is_physically_consistent(instance, spec, hyp_rng):
    rng = random.Random(hyp_rng.randrange(1 << 30))
    schedule = random_schedule(instance, rng)
    result, plan = simulate_with_faults(
        instance, schedule, spec, record_timeline=True
    )
    # Calls run back-to-back on the execution thread: monotone
    # non-decreasing, and each finish is start plus a real duration.
    prev_finish = 0.0
    for call in result.call_timings:
        assert call.start >= prev_finish
        assert call.finish >= call.start
        prev_finish = call.finish
    assert result.makespan == prev_finish
    # Every attempt (failed ones included) occupies its thread for
    # exactly the charged time.
    assert len(result.task_timings) == len(plan.tasks)
    for timing, charged in zip(result.task_timings, plan.compile_times):
        assert timing.finish - timing.start >= 0.0
        assert timing.finish == timing.start + charged


@settings(max_examples=80, deadline=None)
@given(
    instances(),
    fault_specs,
    st.integers(min_value=1, max_value=3),
    st.randoms(),
)
def test_engines_agree_bitwise_and_seed_reproduces(
    instance, spec, threads, hyp_rng
):
    rng = random.Random(hyp_rng.randrange(1 << 30))
    schedule = random_schedule(instance, rng)
    plan = apply_to_schedule(instance, schedule, FaultInjector(spec))
    rerun = apply_to_schedule(instance, schedule, FaultInjector(spec))
    assert plan == rerun  # same seed → identical degradation, bit for bit

    ref = simulate(
        instance,
        plan.tasks,
        compile_threads=threads,
        record_timeline=True,
        validate=False,
        task_compile_times=plan.compile_times,
        task_installs=plan.installs,
    )
    fast = FastSimulator(instance, compile_threads=threads).evaluate(
        plan.tasks,
        record_timeline=True,
        task_compile_times=plan.compile_times,
        task_installs=plan.installs,
    )
    assert fast.makespan == ref.makespan
    assert fast.compile_end == ref.compile_end
    assert fast.total_bubble_time == ref.total_bubble_time
    assert fast.total_exec_time == ref.total_exec_time
    assert fast.calls_at_level == ref.calls_at_level
    assert fast.task_timings == ref.task_timings
    assert fast.call_timings == ref.call_timings
