"""Tests for baselines and the noise-aware comparator (repro.perf)."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    SCHEMA_VERSION,
    BaselineError,
    baseline_path,
    compare_dirs,
    compare_doc,
    legacy_doc,
    load_baseline,
    load_baseline_dir,
    machine_fingerprint,
    render_markdown,
    render_text,
    report_json,
    worst_status,
    write_doc,
)
from repro.perf.compare import Comparison


def doc(
    name="bench",
    median=1.0,
    iqr=0.1,
    counters=None,
    machine=None,
    scale=0.01,
    schema=SCHEMA_VERSION,
    kind="perf",
    params=None,
):
    """A minimal comparator-ready result/baseline document."""
    return {
        "schema_version": schema,
        "kind": kind,
        "name": name,
        "scale": scale,
        "params": params or {},
        "machine": machine or machine_fingerprint(),
        "timing": {"median_s": median, "iqr_s": iqr},
        "counters": dict(counters or {"work": 100}),
    }


class TestCompareDoc:
    def test_identical_docs_pass(self):
        base = doc()
        result = compare_doc(doc(), base)
        assert result.status == "pass"
        assert result.time_compared

    def test_missing_baseline_skips(self):
        result = compare_doc(doc(), None)
        assert result.status == "skip"
        assert "no baseline" in result.notes[0]

    def test_schema_version_mismatch_skips(self):
        result = compare_doc(doc(), doc(schema=SCHEMA_VERSION + 1))
        assert result.status == "skip"
        assert "schema_version" in result.notes[0]

    def test_scale_mismatch_skips(self):
        result = compare_doc(doc(scale=0.01), doc(scale=1.0))
        assert result.status == "skip"
        assert "scale" in result.notes[0]

    def test_params_mismatch_skips(self):
        result = compare_doc(doc(params={"threads": 2}), doc())
        assert result.status == "skip"

    def test_legacy_kind_not_gated(self):
        result = compare_doc(doc(kind="legacy-text"), doc(kind="legacy-text"))
        assert result.status == "skip"

    def test_counter_regression_fails_even_with_unchanged_wall_time(self):
        # The dual-signal point: identical timing, more work — a real
        # algorithmic regression that wall clocks alone would miss.
        base = doc(counters={"work": 100})
        cur = doc(counters={"work": 150})
        result = compare_doc(cur, base)
        assert result.status == "fail"
        assert any("counter regression" in n for n in result.notes)
        assert result.counter_diffs[0].regressed

    def test_counter_improvement_warns_until_refresh(self):
        result = compare_doc(doc(counters={"work": 80}), doc())
        assert result.status == "warn"
        assert any("refresh" in n for n in result.notes)

    def test_counter_set_change_warns(self):
        result = compare_doc(doc(counters={"work": 100, "new": 1}), doc())
        assert result.status == "warn"
        assert any("counter set changed" in n for n in result.notes)

    def test_zero_iqr_uses_relative_floor(self):
        # IQR 0 must not turn scheduler jitter into alarms: the
        # threshold falls back to median * (1 + REL_FLOOR).
        base = doc(median=1.0, iqr=0.0)
        within = compare_doc(doc(median=1.10, iqr=0.0), base)
        assert within.status == "pass"
        beyond = compare_doc(doc(median=1.30, iqr=0.0), base)
        assert beyond.status == "warn"
        assert any("drift" in n for n in beyond.notes)

    def test_noisy_baseline_widens_the_threshold(self):
        base = doc(median=1.0, iqr=0.2)  # threshold 1 + 3*0.2 = 1.6
        assert compare_doc(doc(median=1.5), base).status == "pass"
        assert compare_doc(doc(median=1.7), base).status == "warn"

    def test_timing_drift_never_fails(self):
        result = compare_doc(doc(median=100.0), doc(median=1.0))
        assert result.status == "warn"

    def test_fingerprint_mismatch_warns_and_skips_timing(self):
        other = dict(machine_fingerprint(), platform="other-os")
        result = compare_doc(doc(median=100.0), doc(machine=other))
        assert result.status == "warn"
        assert not result.time_compared
        assert any("fingerprint" in n for n in result.notes)

    def test_fingerprint_mismatch_still_gates_counters(self):
        other = dict(machine_fingerprint(), platform="other-os")
        result = compare_doc(
            doc(counters={"work": 150}), doc(machine=other)
        )
        assert result.status == "fail"


class TestBaselineStore:
    def test_write_and_load_round_trip(self, tmp_path):
        path = write_doc(baseline_path(tmp_path, "x"), doc(name="x"))
        assert path.name == "BENCH_x.json"
        assert load_baseline(path)["name"] == "x"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError, match="no baseline"):
            load_baseline(tmp_path / "BENCH_nope.json")

    def test_corrupt_file_raises_but_dir_scan_skips_it(self, tmp_path):
        write_doc(baseline_path(tmp_path, "good"), doc(name="good"))
        bad = baseline_path(tmp_path, "bad")
        bad.write_text("{not json")
        with pytest.raises(BaselineError, match="unreadable"):
            load_baseline(bad)
        assert set(load_baseline_dir(tmp_path)) == {"good"}

    def test_legacy_sidecar_document(self):
        sidecar = legacy_doc("table1", "| a | b |", scale=0.01)
        assert sidecar["kind"] == "legacy-text"
        assert sidecar["schema_version"] == SCHEMA_VERSION
        assert sidecar["text"] == "| a | b |"

    def test_missing_dir_is_empty_not_error(self, tmp_path):
        assert load_baseline_dir(tmp_path / "absent") == {}


class TestCompareDirs:
    def test_pairs_results_with_baselines(self, tmp_path):
        base_dir = tmp_path / "base"
        res_dir = tmp_path / "res"
        write_doc(baseline_path(base_dir, "a"), doc(name="a"))
        write_doc(baseline_path(res_dir, "a"), doc(name="a"))
        write_doc(baseline_path(res_dir, "b"), doc(name="b"))  # new
        write_doc(baseline_path(base_dir, "c"), doc(name="c"))  # stale
        comps = {c.name: c for c in compare_dirs(res_dir, base_dir)}
        assert comps["a"].status == "pass"
        assert comps["b"].status == "skip"  # no baseline yet
        assert comps["c"].status == "skip"  # no fresh result
        assert "no fresh result" in comps["c"].notes[0]

    def test_worst_status_orders_severity(self):
        def mk(s):
            return Comparison(name="x", status=s, notes=())
        assert worst_status([]) == "pass"
        assert worst_status([mk("pass"), mk("skip")]) == "skip"
        assert worst_status([mk("warn"), mk("skip")]) == "warn"
        assert worst_status([mk("warn"), mk("fail")]) == "fail"


class TestReports:
    def _comps(self):
        base = doc(counters={"work": 100})
        return [
            compare_doc(doc(), base),
            compare_doc(doc(name="worse", counters={"work": 150}), base),
        ]

    def test_markdown_leads_with_the_worst(self):
        text = render_markdown(self._comps())
        assert "Overall: **fail**" in text
        assert text.index("worse") < text.index("| bench |")
        assert "counter regression" in text

    def test_text_summary_has_overall_line(self):
        text = render_text(self._comps())
        assert "overall: fail" in text

    def test_json_report_is_serializable_and_counts(self):
        report = report_json(self._comps())
        assert report["overall"] == "fail"
        assert report["status_counts"] == {"pass": 1, "fail": 1}
        json.dumps(report)  # no stray non-JSON types
