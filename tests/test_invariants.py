"""Paper invariants the engines must never violate.

Two families:

* **Theorem 1 (Section 4.1)** — on a single core, compiling each
  function once at its most cost-effective level is optimal, and the
  on-demand order achieves the optimum.  We check the closed form
  against a brute-force enumeration of every per-function level chain.
* **Lower-bound soundness** — the Section 5.2 lower bound never exceeds
  the make-span of any valid schedule, in particular IAR's.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CompileTask,
    FunctionProfile,
    OCSPInstance,
    Schedule,
    iar_schedule,
    lower_bound,
    optimal_schedule,
    simulate,
    simulate_single_core,
)
from repro.core.singlecore import (
    most_cost_effective_levels,
    single_core_optimal_makespan,
    single_core_optimal_schedule,
)

times = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)


@st.composite
def profiles_strategy(draw, max_functions=3, max_levels=3):
    n_funcs = draw(st.integers(min_value=1, max_value=max_functions))
    profiles: Dict[str, FunctionProfile] = {}
    for i in range(n_funcs):
        n_levels = draw(st.integers(min_value=1, max_value=max_levels))
        compile_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels))
        )
        exec_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels)),
            reverse=True,
        )
        name = f"f{i}"
        profiles[name] = FunctionProfile(name, tuple(compile_times), tuple(exec_times))
    return profiles


@st.composite
def instances(draw, max_functions=3, max_levels=3, max_calls=10):
    profiles = draw(profiles_strategy(max_functions, max_levels))
    names = sorted(profiles)
    calls = draw(st.lists(st.sampled_from(names), min_size=1, max_size=max_calls))
    return OCSPInstance(profiles, tuple(calls), name="inv")


def _level_chains(num_levels: int) -> List[Tuple[int, ...]]:
    """Every non-empty strictly increasing level subsequence."""
    chains: List[Tuple[int, ...]] = []
    for size in range(1, num_levels + 1):
        chains.extend(combinations(range(num_levels), size))
    return chains


def _single_core_bruteforce(instance: OCSPInstance) -> float:
    """Minimum single-core make-span over *all* per-function chains.

    On one core the interleaving does not matter (simulate_single_core
    already assumes the optimal one), so enumerating chain choices
    covers every schedule.
    """
    functions = instance.called_functions
    options = [
        _level_chains(instance.profiles[fname].num_levels) for fname in functions
    ]
    best = float("inf")
    for choice in product(*options):
        tasks = [
            CompileTask(fname, lvl)
            for fname, chain in zip(functions, choice)
            for lvl in chain
        ]
        span = simulate_single_core(instance, Schedule(tuple(tasks))).makespan
        best = min(best, span)
    return best


# ---------------------------------------------------------------------------
# Theorem 1
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(instances())
def test_theorem1_closed_form_is_bruteforce_optimal(instance):
    closed_form = single_core_optimal_makespan(instance)
    brute = _single_core_bruteforce(instance)
    assert closed_form == pytest.approx(brute, rel=1e-12)


@settings(max_examples=60, deadline=None)
@given(instances())
def test_theorem1_on_demand_order_achieves_the_optimum(instance):
    """Any order of the most-cost-effective compiles is optimal; the
    schedule helper uses the on-demand (first-appearance) order."""
    schedule = single_core_optimal_schedule(instance)
    # one task per called function, at its most cost-effective level,
    # in first-appearance (on-demand) order
    levels = most_cost_effective_levels(instance)
    assert tuple(schedule) == tuple(
        CompileTask(fname, levels[fname]) for fname in instance.called_functions
    )
    achieved = simulate_single_core(instance, schedule).makespan
    assert achieved == pytest.approx(single_core_optimal_makespan(instance), rel=1e-12)


def test_theorem1_recompilation_never_helps_on_one_core():
    """A hand-built case where dual-core loves the recompile but the
    single-core optimum compiles exactly once."""
    prof = {
        "hot": FunctionProfile("hot", (1.0, 20.0), (5.0, 1.0)),
        "cold": FunctionProfile("cold", (1.0, 30.0), (2.0, 1.9)),
    }
    inst = OCSPInstance(prof, ("hot",) * 10 + ("cold",), name="recompile")
    schedule = single_core_optimal_schedule(inst)
    # hot: 20 + 10*1 = 30 beats 1 + 10*5 = 51 -> level 1;
    # cold: 1 + 2 = 3 beats 30 + 1.9 -> level 0.
    assert {t.function: t.level for t in schedule} == {"hot": 1, "cold": 0}
    assert single_core_optimal_makespan(inst) == pytest.approx(30.0 + 3.0)
    assert _single_core_bruteforce(inst) == pytest.approx(33.0)


# ---------------------------------------------------------------------------
# lower-bound soundness
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(instances(max_functions=4, max_levels=3, max_calls=12))
def test_lower_bound_below_iar_makespan(instance):
    schedule = iar_schedule(instance)
    result = simulate(instance, schedule)
    assert lower_bound(instance) <= result.makespan + 1e-9


@settings(max_examples=25, deadline=None)
@given(instances(max_functions=2, max_levels=2, max_calls=6))
def test_lower_bound_below_true_optimum(instance):
    best = optimal_schedule(instance)
    assert lower_bound(instance) <= best.makespan + 1e-9


def test_iar_within_bruteforce_on_paper_example(fig2_instance):
    """IAR's make-span is bracketed by the bound and the enumerated
    optimum on the Figure 2 instance."""
    best = optimal_schedule(fig2_instance)
    iar_span = simulate(fig2_instance, iar_schedule(fig2_instance)).makespan
    assert lower_bound(fig2_instance) <= best.makespan <= iar_span
