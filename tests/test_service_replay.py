"""The load driver and the deterministic-replay contract.

The acceptance bar for the service: a fixed seed and event stream
produce a bitwise-identical decision log across runs, transports
(in-process vs a real socket server), and kill-and-restart resumes —
including under a nonzero fault spec — while decisions/sec and latency
percentiles flow through ``repro.perf``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.harness import TimingStats
from repro.service import (
    DecisionCache,
    DecisionEngine,
    ProtocolError,
    generate_events,
    load_events,
    replay_inproc,
    run_replay,
    write_events,
)
from repro.service.driver import load_decision_log

FAULTS = "compile_fail=0.1,retries=1,seed=3"
SOAK_TENANTS = 8
SOAK_EVENTS = 1000


def _engine(faults=FAULTS):
    return DecisionEngine(faults=faults, cache=DecisionCache())


@pytest.fixture(scope="module")
def soak_events():
    return generate_events(
        tenants=SOAK_TENANTS, events=SOAK_EVENTS, scale=0.02, seed=0
    )


# ---------------------------------------------------------------------------
# Event-stream generation
# ---------------------------------------------------------------------------
class TestGenerateEvents:
    def test_same_seed_same_stream(self, soak_events):
        again = generate_events(
            tenants=SOAK_TENANTS, events=SOAK_EVENTS, scale=0.02, seed=0
        )
        assert again == soak_events

    def test_different_seed_different_interleave(self, soak_events):
        other = generate_events(
            tenants=SOAK_TENANTS, events=SOAK_EVENTS, scale=0.02, seed=1
        )
        assert other != soak_events

    def test_quota_and_seq_stamping(self, soak_events):
        calls = [e for e in soak_events if e["op"] == "call"]
        assert len(calls) >= SOAK_EVENTS
        assert [e["seq"] for e in soak_events] == list(
            range(len(soak_events))
        )
        tenants = {e["tenant"] for e in soak_events}
        assert len(tenants) == SOAK_TENANTS

    def test_profiles_precede_first_call(self, soak_events):
        seen = set()
        for event in soak_events:
            key = (event["tenant"], event["function"])
            if event["op"] == "profile":
                seen.add(key)
            else:
                assert key in seen

    def test_bad_arguments_raise(self):
        with pytest.raises(ValueError):
            generate_events(tenants=0)
        with pytest.raises(ValueError):
            generate_events(events=0)


class TestEventFiles:
    def test_roundtrip(self, soak_events, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(soak_events, path)
        assert load_events(path) == soak_events

    def test_malformed_line_is_reported_with_its_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"op":"ping"}\nnot json\n')
        with pytest.raises(ProtocolError, match="line 2"):
            load_events(path)

    def test_unknown_op_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"op":"evil"}\n')
        with pytest.raises(ProtocolError, match="line 1"):
            load_events(path)


# ---------------------------------------------------------------------------
# Satellite 4: the soak — bitwise determinism across runs and transports
# ---------------------------------------------------------------------------
class TestSoakDeterminism:
    def _log(self, tmp_path, name, **kwargs):
        out = tmp_path / name
        events = kwargs.pop("events")
        report = run_replay(
            events, _engine(), decisions_out=out, **kwargs
        )
        return out.read_bytes(), report

    def test_two_inproc_runs_are_bitwise_identical(
        self, soak_events, tmp_path
    ):
        log1, report1 = self._log(tmp_path, "a.jsonl", events=soak_events)
        log2, report2 = self._log(tmp_path, "b.jsonl", events=soak_events)
        assert log1 == log2
        assert report1.decisions == report2.decisions >= SOAK_EVENTS
        assert report1.tenants == SOAK_TENANTS

    def test_socket_log_equals_inproc_log(self, soak_events, tmp_path):
        inproc, _ = self._log(tmp_path, "i.jsonl", events=soak_events)
        socket_log, report = self._log(
            tmp_path, "s.jsonl", events=soak_events, mode="socket"
        )
        assert socket_log == inproc
        assert report.decisions >= SOAK_EVENTS

    def test_report_flows_through_repro_perf(self, soak_events):
        _, report = replay_inproc(soak_events, _engine())
        assert isinstance(report.latency, TimingStats)
        assert report.decisions_per_sec > 0
        assert report.p99_ms >= report.p50_ms >= 0
        doc = report.as_dict()
        assert doc["latency"]["median_s"] == report.latency.median_s

    @pytest.mark.parametrize("cut", [1, 100, 999])
    def test_kill_and_restart_resume_is_exact(
        self, soak_events, tmp_path, cut
    ):
        full = tmp_path / "full.jsonl"
        run_replay(soak_events, _engine(), decisions_out=full)
        reference = full.read_bytes()
        # simulate a crash: keep only the first `cut` journal lines
        partial = tmp_path / "partial.jsonl"
        lines = reference.splitlines(keepends=True)
        partial.write_bytes(b"".join(lines[:cut]))
        report = run_replay(
            soak_events, _engine(), decisions_out=partial, resume=True
        )
        assert report.skipped == cut
        assert report.decisions == len(lines) - cut
        assert partial.read_bytes() == reference

    def test_resume_emits_no_duplicate_seqs(self, soak_events, tmp_path):
        out = tmp_path / "log.jsonl"
        run_replay(soak_events, _engine(), decisions_out=out)
        run_replay(soak_events, _engine(), decisions_out=out, resume=True)
        seqs = [
            json.loads(line)["seq"]
            for line in out.read_bytes().splitlines()
        ]
        assert len(seqs) == len(set(seqs))

    def test_unknown_mode_raises(self, soak_events):
        with pytest.raises(ValueError, match="unknown replay mode"):
            run_replay(soak_events[:5], _engine(), mode="carrier-pigeon")

    def test_load_decision_log_missing_file_is_fresh(self, tmp_path):
        assert load_decision_log(tmp_path / "nope.jsonl") == {}


# ---------------------------------------------------------------------------
# The CLI surface (`repro serve replay`)
# ---------------------------------------------------------------------------
class TestServeReplayCli:
    ARGS = [
        "serve", "replay",
        "--tenants", str(SOAK_TENANTS),
        "--events", str(SOAK_EVENTS),
        "--seed", "0",
        "--faults", FAULTS,
    ]

    def test_acceptance_run_is_bitwise_reproducible(self, tmp_path, capsys):
        out1, out2 = tmp_path / "d1.jsonl", tmp_path / "d2.jsonl"
        assert main(self.ARGS + ["--decisions-out", str(out1)]) == 0
        text = capsys.readouterr().out
        assert main(self.ARGS + ["--decisions-out", str(out2)]) == 0
        capsys.readouterr()
        assert out1.read_bytes() == out2.read_bytes()
        assert "decisions/sec" in text
        assert "p99" in text
        assert "via repro.perf" in text

    def test_json_report_and_saved_events(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        events_path = tmp_path / "events.jsonl"
        code = main(
            self.ARGS
            + [
                "--json-out", str(report_path),
                "--save-events", str(events_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        doc = json.loads(report_path.read_text())
        assert doc["tenants"] == SOAK_TENANTS
        assert doc["decisions"] >= SOAK_EVENTS
        assert doc["p99_ms"] >= 0
        assert len(load_events(events_path)) == doc["events"]

    def test_bad_fault_spec_exits_2(self, tmp_path, capsys):
        assert main(["serve", "replay", "--faults", "bogus=1"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_malformed_events_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code = main(["serve", "replay", "--events-file", str(bad)])
        assert code == 2
        assert "line 1" in capsys.readouterr().err
