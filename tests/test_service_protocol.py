"""The JSONL wire protocol: canonical encoding and strict validation."""

from __future__ import annotations

import json

import pytest

from repro.service import PROTOCOL_VERSION, ProtocolError, decode, encode
from repro.service.protocol import error_response, validate_event


def test_protocol_version_is_pinned():
    assert PROTOCOL_VERSION == 1


def test_encode_is_canonical_and_newline_terminated():
    line = encode({"b": 1, "a": 2})
    assert line == b'{"a":2,"b":1}\n'
    # key order in the input never shows in the output
    assert encode({"a": 2, "b": 1}) == line


def test_roundtrip_call_event():
    event = {"op": "call", "tenant": "t0", "function": "f", "seq": 7}
    assert decode(encode(event)) == event


def test_decode_rejects_non_json():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decode(b"nonsense\n")


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError, match="expected a JSON object"):
        decode(b"[1,2,3]\n")


def test_decode_rejects_unknown_op():
    with pytest.raises(ProtocolError, match="unknown op 'frobnicate'"):
        decode(encode({"op": "frobnicate"}))


def test_decode_rejects_missing_fields():
    with pytest.raises(ProtocolError, match="missing field 'function'"):
        decode(encode({"op": "call", "tenant": "t0"}))


def test_profile_times_must_be_non_empty_lists():
    bad = {
        "op": "profile",
        "tenant": "t0",
        "function": "f",
        "compile_times": [],
        "exec_times": [1.0],
    }
    with pytest.raises(ProtocolError, match="non-empty list"):
        validate_event(bad)


def test_protocol_error_is_a_value_error():
    # The CLI error taxonomy (exit 2) rests on this.
    assert issubclass(ProtocolError, ValueError)


def test_error_response_shapes():
    assert error_response("boom") == {"ok": False, "error": "boom"}
    overloaded = error_response("overloaded", retry=True, seq=3)
    assert overloaded == {
        "ok": False,
        "error": "overloaded",
        "retry": True,
        "seq": 3,
    }
    # seq 0 must not be dropped by truthiness
    assert error_response("x", seq=0)["seq"] == 0


def test_encoded_errors_parse_back():
    line = encode(error_response("overloaded", retry=True))
    assert json.loads(line.decode()) == {
        "error": "overloaded",
        "ok": False,
        "retry": True,
    }
