"""Differential test: the reactive runtime vs the schedule simulators.

A :class:`~repro.vm.runtime.RuntimeSimulator` run *is* a make-span
simulation of its emergent schedule — provided each compile task is
held back until the moment the runtime actually enqueued it.  Replaying
``run.schedule`` through :func:`repro.core.makespan.simulate` (and the
fast engine) with ``release_times=run.enqueue_times`` must therefore
reproduce the runtime's numbers bit for bit.  This cross-checks three
independently written engines against each other on every preset.
"""

from __future__ import annotations

import pytest

from repro.core.fastsim import FastSimulator
from repro.core.makespan import simulate
from repro.vm.jikes import run_jikes
from repro.vm.v8 import run_v8
from repro.workloads import dacapo

SCALE = 0.002
BENCHMARKS = sorted(dacapo.BENCHMARKS)


def _assert_replay_matches(instance, run, compile_threads=1):
    replay = simulate(
        instance,
        run.schedule,
        compile_threads=compile_threads,
        release_times=run.enqueue_times,
        validate=False,
    )
    assert replay.makespan == run.makespan
    assert replay.total_bubble_time == run.total_bubble_time
    assert replay.total_exec_time == run.total_exec_time
    assert replay.calls_at_level == run.calls_at_level

    fast = FastSimulator(instance, compile_threads=compile_threads)
    fast_result = fast.evaluate(run.schedule, release_times=run.enqueue_times)
    assert fast_result.makespan == run.makespan
    assert fast_result.total_bubble_time == run.total_bubble_time


@pytest.mark.parametrize("name", BENCHMARKS)
def test_jikes_replay_is_bitwise_identical(name):
    instance = dacapo.load(name, scale=SCALE)
    _assert_replay_matches(instance, run_jikes(instance))


@pytest.mark.parametrize("name", BENCHMARKS)
def test_v8_replay_is_bitwise_identical(name):
    instance = dacapo.load(name, scale=SCALE)
    _assert_replay_matches(instance, run_v8(instance))


def test_multithreaded_replay_matches():
    instance = dacapo.load("antlr", scale=SCALE)
    for threads in (2, 4):
        _assert_replay_matches(
            instance, run_jikes(instance, compile_threads=threads), threads
        )


def test_release_times_length_is_checked():
    instance = dacapo.load("antlr", scale=SCALE)
    run = run_jikes(instance)
    with pytest.raises(ValueError, match="release_times"):
        simulate(
            instance,
            run.schedule,
            release_times=run.enqueue_times[:-1],
            validate=False,
        )
    with pytest.raises(ValueError, match="release_times"):
        FastSimulator(instance).evaluate(
            run.schedule, release_times=run.enqueue_times[:-1]
        )


def test_without_release_times_the_replay_is_no_slower():
    """Dropping the release constraint can only start compiles earlier."""
    instance = dacapo.load("fop", scale=SCALE)
    run = run_v8(instance)
    free = simulate(instance, run.schedule, validate=False)
    assert free.makespan <= run.makespan
