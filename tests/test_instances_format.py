"""The versioned on-disk instance format: canonical exports, full
validation, and the stable ``instance:`` error taxonomy."""

import json

import pytest

from repro.core import DueDateTable, Schedule, simulate
from repro.core.engine import ENGINES
from repro.instances import (
    FORMAT_NAME,
    FORMAT_VERSION,
    InstanceBundle,
    InstanceError,
    fingerprint_content,
    list_bundles,
    read_bundle,
    validate_bundle,
    write_bundle,
)
from repro.store import fingerprint_instance
from repro.workloads import WorkloadSpec, generate


@pytest.fixture(scope="module")
def instance():
    return generate(
        WorkloadSpec(name="fmt", num_functions=5, num_calls=60, num_levels=3),
        seed=7,
    )


@pytest.fixture(scope="module")
def due(instance):
    names = sorted(instance.profiles)
    return DueDateTable(
        {names[0]: (50.0, 2.0), names[1]: (10.0, 1.0), names[2]: (0.0, 1.0)}
    )


@pytest.fixture()
def bundle(instance, due):
    return InstanceBundle(
        instance=instance, due_dates=due, source="synthetic", compile_threads=2
    )


def file_bytes(root):
    return {
        p.name: p.read_bytes() for p in sorted(root.iterdir()) if p.is_file()
    }


class TestRoundTrip:
    def test_read_back_equals_original(self, tmp_path, bundle):
        write_bundle(bundle, tmp_path / "b")
        back = read_bundle(tmp_path / "b")
        assert back.instance == bundle.instance
        assert back.due_dates == bundle.due_dates
        assert back.source == bundle.source
        assert back.compile_threads == bundle.compile_threads
        assert back.content_fingerprint() == bundle.content_fingerprint()

    def test_re_export_is_byte_identical(self, tmp_path, bundle):
        write_bundle(bundle, tmp_path / "a")
        write_bundle(read_bundle(tmp_path / "a"), tmp_path / "b")
        assert file_bytes(tmp_path / "a") == file_bytes(tmp_path / "b")

    def test_simulate_counters_survive_round_trip(self, tmp_path, bundle):
        write_bundle(bundle, tmp_path / "b")
        back = read_bundle(tmp_path / "b")
        schedule = Schedule.of(
            *((f, 0) for f in sorted(bundle.instance.called_functions))
        )
        for engine in ENGINES:
            a = simulate(bundle.instance, schedule, engine=engine)
            b = simulate(back.instance, schedule, engine=engine)
            assert a.makespan == b.makespan
            assert a.calls_at_level == b.calls_at_level
            assert a.total_bubble_time == b.total_bubble_time

    def test_manifest_path_accepted(self, tmp_path, bundle):
        root = write_bundle(bundle, tmp_path / "b")
        back = read_bundle(root / "manifest.json")
        assert back.instance == bundle.instance

    def test_trailing_newline_on_every_file(self, tmp_path, bundle):
        root = write_bundle(bundle, tmp_path / "b")
        for name, data in file_bytes(root).items():
            assert data.endswith(b"\n"), name
            assert b"\r" not in data, name


class TestFingerprint:
    def test_matches_store_without_due_dates(self, instance):
        bundle = InstanceBundle(instance=instance)
        assert bundle.content_fingerprint() == fingerprint_instance(instance)

    def test_due_dates_change_the_fingerprint(self, instance, due):
        plain = fingerprint_content(instance)
        with_due = fingerprint_content(instance, due)
        assert plain != with_due

    def test_due_date_weight_changes_the_fingerprint(self, instance, due):
        names = sorted(due.entries)
        bumped = DueDateTable(
            {
                f: (d, w + 1.0 if f == names[0] else w)
                for f, (d, w) in due.items()
            }
        )
        assert fingerprint_content(instance, due) != fingerprint_content(
            instance, bumped
        )


class TestValidation:
    def edited(self, tmp_path, bundle, name, transform):
        root = write_bundle(bundle, tmp_path / "b")
        target = root / name
        target.write_text(transform(target.read_text()), encoding="utf-8")
        return root

    def test_nonexistent_path(self, tmp_path):
        with pytest.raises(InstanceError, match="^instance:"):
            read_bundle(tmp_path / "missing")

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "b").mkdir()
        with pytest.raises(InstanceError, match="manifest"):
            read_bundle(tmp_path / "b")

    def test_wrong_format_name(self, tmp_path, bundle):
        def transform(text):
            doc = json.loads(text)
            doc["format"] = "other-format"
            return json.dumps(doc)

        root = self.edited(tmp_path, bundle, "manifest.json", transform)
        with pytest.raises(InstanceError, match="unsupported format"):
            read_bundle(root)

    def test_wrong_format_version(self, tmp_path, bundle):
        def transform(text):
            doc = json.loads(text)
            doc["format_version"] = FORMAT_VERSION + 1
            return json.dumps(doc)

        root = self.edited(tmp_path, bundle, "manifest.json", transform)
        with pytest.raises(InstanceError, match="format_version"):
            read_bundle(root)

    def test_unknown_extra_manifest_keys_ignored(self, tmp_path, bundle):
        def transform(text):
            doc = json.loads(text)
            doc["x_future_extension"] = {"anything": 1}
            # Keys are additive-compatible, but the fingerprint covers
            # content only, so the bundle still validates.
            return json.dumps(doc)

        root = self.edited(tmp_path, bundle, "manifest.json", transform)
        assert read_bundle(root).instance == bundle.instance

    def test_file_map_rejects_path_escape(self, tmp_path, bundle):
        def transform(text):
            doc = json.loads(text)
            doc["files"]["costs"] = "../costs.csv"
            return json.dumps(doc)

        root = self.edited(tmp_path, bundle, "manifest.json", transform)
        with pytest.raises(InstanceError, match="bare file name"):
            read_bundle(root)

    def test_listed_file_missing(self, tmp_path, bundle):
        root = write_bundle(bundle, tmp_path / "b")
        (root / "calls.csv").unlink()
        with pytest.raises(InstanceError, match="missing"):
            read_bundle(root)

    def test_tampered_costs_fail_the_fingerprint(self, tmp_path, bundle):
        def transform(text):
            lines = text.splitlines()
            name, rest = lines[1].split(",", 1)
            cells = rest.split(",")
            cells[0] = repr(float(cells[0]) * 0.5)
            lines[1] = ",".join([name] + cells)
            return "\n".join(lines) + "\n"

        root = self.edited(tmp_path, bundle, "costs.csv", transform)
        with pytest.raises(InstanceError, match="fingerprint mismatch"):
            read_bundle(root)
        # The importer-style read without verification still succeeds.
        assert read_bundle(root, verify_fingerprint=False)

    def test_non_monotone_costs_rejected_before_fingerprint(
        self, tmp_path, bundle
    ):
        def transform(text):
            lines = text.splitlines()
            name, rest = lines[1].split(",", 1)
            cells = rest.split(",")
            cells[0] = "1e9"  # c0 above every later level
            lines[1] = ",".join([name] + cells)
            return "\n".join(lines) + "\n"

        root = self.edited(tmp_path, bundle, "costs.csv", transform)
        with pytest.raises(InstanceError, match="non-decreasing"):
            read_bundle(root)

    def test_count_mismatch(self, tmp_path, bundle):
        def transform(text):
            doc = json.loads(text)
            doc["counts"]["calls"] += 1
            return json.dumps(doc)

        root = self.edited(tmp_path, bundle, "manifest.json", transform)
        with pytest.raises(InstanceError, match="counts.calls"):
            read_bundle(root)

    def test_calls_naming_unknown_function(self, tmp_path, bundle):
        def transform(text):
            return text + "no-such-function\n"

        root = self.edited(tmp_path, bundle, "calls.csv", transform)
        with pytest.raises(InstanceError, match="^instance:"):
            read_bundle(root)

    def test_due_dates_naming_unknown_function(self, tmp_path, bundle):
        def transform(text):
            doc = json.loads(text)
            doc["entries"]["ghost"] = {"due": 1.0, "weight": 1.0}
            return json.dumps(doc)

        root = self.edited(tmp_path, bundle, "due_dates.json", transform)
        with pytest.raises(InstanceError, match="ghost"):
            read_bundle(root)

    def test_bad_compile_threads(self, tmp_path, bundle):
        def transform(text):
            doc = json.loads(text)
            doc["compile_threads"] = 0
            return json.dumps(doc)

        root = self.edited(tmp_path, bundle, "machine.json", transform)
        with pytest.raises(InstanceError, match="compile_threads"):
            read_bundle(root)

    def test_validate_bundle_is_strict_alias(self, tmp_path, bundle):
        root = write_bundle(bundle, tmp_path / "b")
        assert validate_bundle(root).instance == bundle.instance


class TestListBundles:
    def test_lists_children_sorted(self, tmp_path, instance):
        for name in ("beta", "alpha"):
            write_bundle(
                InstanceBundle(instance=instance), tmp_path / name
            )
        (tmp_path / "not-a-bundle").mkdir()
        rows = list_bundles(tmp_path)
        assert [row["path"] for row in rows] == [
            str(tmp_path / "alpha"),
            str(tmp_path / "beta"),
        ]
        assert all("error" not in row for row in rows)

    def test_root_may_be_a_bundle(self, tmp_path, instance):
        write_bundle(InstanceBundle(instance=instance), tmp_path / "b")
        rows = list_bundles(tmp_path / "b")
        assert len(rows) == 1 and rows[0]["name"] == instance.name

    def test_broken_bundle_reported_not_raised(self, tmp_path, instance):
        root = write_bundle(
            InstanceBundle(instance=instance), tmp_path / "b"
        )
        (root / "costs.csv").write_text("name,c0,e0\n", encoding="utf-8")
        rows = list_bundles(tmp_path)
        assert len(rows) == 1 and "error" in rows[0]


class TestBundleObject:
    def test_empty_due_table_normalized_to_none(self, instance):
        bundle = InstanceBundle(instance=instance, due_dates=DueDateTable({}))
        assert bundle.due_dates is None

    def test_due_dates_validated_against_instance(self, instance):
        with pytest.raises(InstanceError, match="^instance:"):
            InstanceBundle(
                instance=instance,
                due_dates=DueDateTable({"ghost": (1.0, 1.0)}),
            )

    def test_bad_compile_threads(self, instance):
        with pytest.raises(InstanceError, match="compile_threads"):
            InstanceBundle(instance=instance, compile_threads=0)

    def test_summary_shape(self, instance, due):
        summary = InstanceBundle(instance=instance, due_dates=due).summary()
        assert summary["functions"] == instance.num_functions
        assert summary["calls"] == instance.num_calls
        assert summary["due_dates"] == len(due)
        assert len(summary["fingerprint"]) == 64

    def test_format_constants(self):
        assert FORMAT_NAME == "repro-instance"
        assert FORMAT_VERSION == 1
