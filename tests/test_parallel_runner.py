"""The parallel experiment runner and its CLI surface.

``run_parallel`` must be a drop-in for calling the figure/table drivers
serially: identical rows in identical order no matter how many worker
processes, with per-benchmark failures isolated into ``errors`` instead
of taking the whole suite down.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    PARALLEL_DRIVERS,
    figure5,
    format_errors,
    run_parallel,
    table2,
)
from repro.cli import main
from repro.core import FunctionProfile, OCSPInstance
from repro.workloads import WorkloadSpec, generate


@pytest.fixture(scope="module")
def suite():
    """A small deterministic three-benchmark suite."""
    out = {}
    for i, name in enumerate(("alpha", "beta", "gamma")):
        spec = WorkloadSpec(
            name=name, num_functions=8, num_calls=120, num_levels=3
        )
        out[name] = generate(spec, seed=100 + i)
    return out


def test_registry_covers_the_paper_drivers():
    assert set(PARALLEL_DRIVERS) == {
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "table2",
        "faults_sweep",
    }


def test_serial_rows_match_direct_driver_calls(suite):
    run = run_parallel(suite, drivers=("figure5", "table2"), jobs=1)
    assert run.ok
    assert run.jobs == 1
    assert run.rows["figure5"] == figure5(suite)
    # table2 rows carry wall-clock timings; compare the deterministic
    # identity columns only.
    assert [r["benchmark"] for r in run.rows["table2"]] == [
        r["benchmark"] for r in table2(suite)
    ]


def test_parallel_rows_equal_serial_rows(suite):
    serial = run_parallel(suite, drivers=("figure5", "figure6"), jobs=1)
    parallel = run_parallel(suite, drivers=("figure5", "figure6"), jobs=2)
    assert serial.rows == parallel.rows
    assert parallel.jobs == 2
    assert serial.ok and parallel.ok


def test_row_order_is_suite_insertion_order(suite):
    run = run_parallel(suite, drivers=("figure5",), jobs=2)
    assert [r["benchmark"] for r in run.rows["figure5"]] == list(suite)


def test_unknown_driver_raises():
    with pytest.raises(KeyError):
        run_parallel({}, drivers=("figure99",))


def test_failing_benchmark_is_isolated(suite):
    # An instance whose profile table is inconsistent with its calls
    # makes every scheduler in the driver blow up for that benchmark.
    broken = OCSPInstance(
        {"f0": FunctionProfile("f0", (1.0,), (1.0,))}, ("f0",), name="broken"
    )
    object.__setattr__(broken, "calls", ("f0", "missing"))
    poisoned = dict(suite)
    poisoned["broken"] = broken
    run = run_parallel(poisoned, drivers=("figure5",), jobs=2)
    assert not run.ok
    assert [e["benchmark"] for e in run.errors] == ["broken"]
    assert run.errors[0]["driver"] == "figure5"
    # the healthy benchmarks still produced their rows, in order
    assert [r["benchmark"] for r in run.rows["figure5"]] == ["alpha", "beta", "gamma"]
    warning = format_errors(run.errors)
    assert "broken" in warning and warning.startswith("WARNING")


def test_format_errors_empty_is_empty_string():
    assert format_errors(()) == ""


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_study_jobs_output_identical(capsys):
    main(["study", "--scale", "0.002", "--figure", "fig5", "--jobs", "1"])
    serial_out = capsys.readouterr().out
    main(["study", "--scale", "0.002", "--figure", "fig5", "--jobs", "2"])
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
    assert "Figure 5" in serial_out
    assert "average" in serial_out


def test_cli_study_jobs_zero_means_one_per_cpu(capsys):
    rc = main(["study", "--scale", "0.002", "--figure", "table2", "--jobs", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Table 2" in out


# ---------------------------------------------------------------------------
# Statuses and cache accounting (the resumable-runner surface)
# ---------------------------------------------------------------------------


def test_statuses_cover_every_unit(suite):
    run = run_parallel(suite, drivers=("figure5", "table2"), jobs=1)
    assert set(run.statuses) == {
        f"{driver}/{bench}"
        for driver in ("figure5", "table2")
        for bench in suite
    }
    assert set(run.statuses.values()) == {"computed"}
    assert run.status_counts() == {"computed": 2 * len(suite)}


def test_uncached_run_reports_zero_cache_traffic(suite):
    run = run_parallel(suite, drivers=("figure5",), jobs=1)
    assert run.cache_hits == 0
    assert run.cache_misses == 0


def test_cache_dir_round_trip_preserves_rows(suite, tmp_path):
    cold = run_parallel(
        suite, drivers=("figure5",), jobs=1, cache=tmp_path / "store"
    )
    warm = run_parallel(
        suite, drivers=("figure5",), jobs=1, cache=tmp_path / "store"
    )
    assert cold.rows == warm.rows == {"figure5": figure5(suite)}
    assert cold.cache_misses == len(suite) and cold.cache_hits == 0
    assert warm.cache_hits == len(suite) and warm.cache_misses == 0


def test_checkpoint_journal_is_written_without_a_store(suite, tmp_path):
    checkpoint = tmp_path / "runstate.jsonl"
    run = run_parallel(
        suite, drivers=("figure5",), jobs=1, checkpoint=checkpoint
    )
    assert run.ok
    from repro.store import load_runstate

    records = load_runstate(checkpoint)
    assert set(records) == set(run.statuses)
    assert all(record.resumable for record in records.values())
