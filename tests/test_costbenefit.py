"""Tests for the cost-benefit models (Sections 2, 6.2.2)."""

import pytest

from repro.core import FunctionProfile, OCSPInstance
from repro.vm.costbenefit import EstimatedModel, OracleModel


@pytest.fixture()
def instance():
    profiles = {
        "hot": FunctionProfile("hot", (1.0, 10.0, 40.0), (8.0, 2.0, 1.0)),
        "cold": FunctionProfile("cold", (1.0, 10.0, 40.0), (8.0, 2.0, 1.0)),
    }
    calls = ("cold",) + ("hot",) * 499
    return OCSPInstance(profiles, calls, name="cb")


def honest(instance, cls=OracleModel, **kwargs):
    """A model with the hotness predictor switched off."""
    return cls(
        instance,
        hotness_optimism=1.0,
        hotness_sigma=0.0,
        hotness_floor=0.0,
        **kwargs,
    )


class TestOracleModel:
    def test_reports_actual_times(self, instance):
        model = OracleModel(instance)
        assert model.compile_time("hot", 2) == 40.0
        assert model.exec_time("hot", 0) == 8.0
        assert model.num_levels("hot") == 3

    def test_honest_suitable_level_matches_profile(self, instance):
        model = honest(instance)
        prof = instance.profiles["hot"]
        assert model.suitable_level("hot", 499) == prof.most_cost_effective_level(
            499, tie_break="high"
        )

    def test_honest_predictor_is_exact(self, instance):
        model = honest(instance)
        assert model.predicted_calls("hot", 499) == 499.0

    def test_hotness_floor_raises_cold_levels(self, instance):
        aggressive = OracleModel(
            instance, hotness_optimism=4.0, hotness_sigma=0.0, hotness_floor=0.5
        )
        exact = honest(instance)
        assert aggressive.suitable_level("cold", 1) >= exact.suitable_level(
            "cold", 1
        )

    def test_prediction_confidence_grows_with_hotness(self, instance):
        model = OracleModel(
            instance, hotness_optimism=5.0, hotness_sigma=0.0, hotness_floor=0.01
        )
        # Relative over-prediction shrinks as actual calls grow.
        cold_ratio = model.predicted_calls("cold", 1) / 1
        hot_ratio = model.predicted_calls("cold", 400) / 400
        assert hot_ratio < cold_ratio

    def test_bad_parameters_rejected(self, instance):
        with pytest.raises(ValueError):
            OracleModel(instance, hotness_optimism=0.0)
        with pytest.raises(ValueError):
            OracleModel(instance, hotness_sigma=-1.0)
        with pytest.raises(ValueError):
            OracleModel(instance, hotness_floor=-0.1)


class TestEstimatedModel:
    def test_deterministic(self, instance):
        a = EstimatedModel(instance, seed=3)
        b = EstimatedModel(instance, seed=3)
        assert a.compile_time("hot", 1) == b.compile_time("hot", 1)
        assert a.exec_time("cold", 2) == b.exec_time("cold", 2)

    def test_zero_error_zero_bias_matches_oracle_times(self, instance):
        est = EstimatedModel(instance, rel_error=0.0, level_bias=0.0)
        oracle = OracleModel(instance)
        for level in range(3):
            assert est.compile_time("hot", level) == oracle.compile_time(
                "hot", level
            )
            assert est.exec_time("hot", level) == oracle.exec_time("hot", level)

    def test_noise_distorts_times(self, instance):
        est = EstimatedModel(instance, rel_error=0.8, level_bias=0.0)
        oracle = OracleModel(instance)
        assert est.exec_time("hot", 0) != oracle.exec_time("hot", 0)

    def test_level_bias_understates_deep_benefit(self, instance):
        est = EstimatedModel(instance, rel_error=0.0, level_bias=0.5)
        oracle = OracleModel(instance)
        # Level-0 estimate untouched; deeper estimates inflated.
        assert est.exec_time("hot", 0) == oracle.exec_time("hot", 0)
        assert est.exec_time("hot", 2) > oracle.exec_time("hot", 2)

    def test_level_bias_never_breaks_monotonicity(self, instance):
        est = EstimatedModel(instance, rel_error=0.7, level_bias=0.9, seed=5)
        for fname in ("hot", "cold"):
            times = [est.exec_time(fname, j) for j in range(3)]
            assert times == sorted(times, reverse=True)

    def test_negative_bias_rejected(self, instance):
        with pytest.raises(ValueError):
            EstimatedModel(instance, level_bias=-0.1)


class TestRecompilationTest:
    def test_fires_for_hot_function(self, instance):
        model = honest(instance)
        # With a large future-call estimate, the upgrade pays off.
        assert model.recompilation_level("hot", 0, future_calls=1000) is not None

    def test_silent_for_cold_function(self, instance):
        model = honest(instance)
        assert model.recompilation_level("hot", 0, future_calls=1) is None

    def test_no_level_above_top(self, instance):
        model = honest(instance)
        assert model.recompilation_level("hot", 2, future_calls=10_000) is None

    def test_picks_minimum_cost_level(self, instance):
        model = honest(instance)
        # future=10: level1 cost 10+20=30, level2 cost 40+10=50, stay 80
        assert model.recompilation_level("hot", 0, future_calls=10) == 1
        # future=1000: level2 cost 40+1000 < level1 10+2000
        assert model.recompilation_level("hot", 0, future_calls=1000) == 2

    def test_estimated_future_calls_unit_conversion(self, instance):
        model = honest(instance)
        # 10 samples at period 4.0 = 40 time units inside the method;
        # believed exec at level 0 is 8.0 → ~5 future invocations.
        assert model.estimated_future_calls("hot", 0, 10, 4.0) == pytest.approx(5.0)

    def test_estimated_future_calls_zero_samples(self, instance):
        model = honest(instance)
        assert model.estimated_future_calls("hot", 0, 0, 4.0) == 0.0
