"""The telemetry plane on a live server: admin endpoints, spans, SLOs,
structured errors, and the drain-time flight dump.

Same style as ``test_service_server.py``: a real loopback listener, raw
stream clients, plus :func:`repro.telemetry.http_get` for the HTTP side
— the tests pin the admin wire format, not internals.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    DecisionEngine,
    DecisionServer,
    ServerConfig,
    encode,
)
from repro.telemetry import (
    ServiceTelemetry,
    parse_http_request_line,
    read_flight_bundle,
    validate_exposition,
)
from repro.telemetry.admin import http_response

PROFILE = {
    "op": "profile",
    "tenant": "t0",
    "function": "f",
    "compile_times": [1.0, 5.0],
    "exec_times": [10.0, 1.0],
}


def _run(coro):
    return asyncio.run(coro)


async def _start(flight_dir=None, **config_kwargs) -> DecisionServer:
    telemetry = ServiceTelemetry(shards=8, flight_dir=flight_dir)
    engine = DecisionEngine(telemetry=telemetry)
    server = DecisionServer(engine, ServerConfig(**config_kwargs))
    await server.start()
    return server


async def _ask(reader, writer, message):
    writer.write(encode(message))
    await writer.drain()
    line = await reader.readline()
    return json.loads(line.decode())


async def _admin(server, method, path):
    """One admin request over a fresh connection: (status, body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


async def _drive_decisions(server, count=5):
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    await _ask(reader, writer, PROFILE)
    for _ in range(count):
        response = await _ask(
            reader, writer, {"op": "call", "tenant": "t0", "function": "f"}
        )
        assert response["op"] == "decision"
    writer.close()
    await writer.wait_closed()
    return response


class TestHttpSniffing:
    def test_request_line_parser(self):
        assert parse_http_request_line(b"GET /statusz HTTP/1.1\r\n") == (
            "GET",
            "/statusz",
        )
        assert parse_http_request_line(b"POST /flightz/dump HTTP/1.0\n") == (
            "POST",
            "/flightz/dump",
        )
        for line in (
            b'{"op": "ping"}\n',  # JSONL stays JSONL
            b"DELETE /x HTTP/1.1\n",  # unsupported method
            b"GET nopath HTTP/1.1\n",
            b"GET /x NOTHTTP\n",
            b"\xff\xfe binary\n",
        ):
            assert parse_http_request_line(line) is None

    def test_http_response_shape(self):
        raw = http_response(200, "text/plain", b"hi")
        assert raw.startswith(b"HTTP/1.0 200 OK\r\n")
        assert b"Content-Length: 2\r\n" in raw
        assert raw.endswith(b"\r\n\r\nhi")


class TestAdminEndpoints:
    def test_healthz_statusz_metricsz(self):
        async def scenario():
            server = await _start()
            await _drive_decisions(server)

            status, body = await _admin(server, "GET", "/healthz")
            assert status == 200
            assert json.loads(body) == {"ok": True, "draining": False}

            status, body = await _admin(server, "GET", "/statusz")
            assert status == 200
            doc = json.loads(body)
            assert doc["summary"]["decisions"] == 5
            assert doc["telemetry"]["enabled"] is True
            assert len(doc["shard_occupancy"]) == len(server.engine.shards)
            assert "t0" in doc["slo"]
            assert doc["slo"]["t0"]["decisions"] == 5
            assert doc["flight"]["recorded"] == 5
            assert doc["uptime_s"] >= 0.0

            status, body = await _admin(server, "GET", "/metricsz")
            assert status == 200
            text = body.decode()
            assert validate_exposition(text) > 0
            assert 'service_tenant_decide_latency_ms{quantile="0.99"' in text
            # 6 spans: the profile registration rides the queue too.
            assert 'service_span_total_ms_count{tenant="t0"} 6' in text
            assert "service_decisions_total{" in text

            status, body = await _admin(server, "GET", "/nope")
            assert status == 404

            status, body = await _admin(server, "HEAD", "/metricsz")
            assert status == 200 and body == b""

            server.stop()
            await server.serve_until_stopped()

        _run(scenario())

    def test_post_only_on_flight_dump(self):
        async def scenario():
            server = await _start()
            status, _ = await _admin(server, "POST", "/statusz")
            assert status == 405
            # No flight_dir configured: dump is refused, not crashed.
            status, body = await _admin(server, "POST", "/flightz/dump")
            assert status == 409
            assert b"flight-dir" in body
            server.stop()
            await server.serve_until_stopped()

        _run(scenario())

    def test_flightz_and_dump(self, tmp_path):
        async def scenario():
            server = await _start(flight_dir=str(tmp_path))
            await _drive_decisions(server, count=3)
            status, body = await _admin(server, "GET", "/flightz")
            assert status == 200
            assert json.loads(body)["flight"]["recorded"] == 3
            status, body = await _admin(server, "POST", "/flightz/dump")
            assert status == 200
            path = json.loads(body)["path"]
            server.stop()
            await server.serve_until_stopped()
            return path

        path = _run(scenario())
        header, entries = read_flight_bundle(path)
        assert header["reason"] == "admin"
        assert len(entries) == 3
        assert all("decision" in entry for entry in entries)

    def test_jsonl_unaffected_by_admin_traffic(self):
        async def scenario():
            server = await _start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await _admin(server, "GET", "/healthz")
            assert await _ask(reader, writer, {"op": "ping"}) == {
                "ok": True,
                "op": "pong",
            }
            server.stop()
            await server.serve_until_stopped()

        _run(scenario())


class TestTelemetrySignals:
    def test_spans_and_slo_after_decisions(self):
        async def scenario():
            server = await _start()
            await _drive_decisions(server, count=4)
            telemetry = server.telemetry
            snap = telemetry.metrics.snapshot()
            # 5 spans: 4 decisions plus the profile registration.
            assert snap["service.span.queue_ms"]["count"] == 5
            assert snap["service.span.total_ms{tenant=t0}"]["count"] == 5
            slo = telemetry.slo.snapshot()["t0"]
            assert slo["decisions"] == 4
            assert slo["p99_ms"] is not None
            flight = list(telemetry.flight.entries())
            assert len(flight) == 4
            # seq counts the profile op too, so the first decision is .2;
            # the flight corr must match the journaled one exactly.
            assert flight[0]["corr"] == "t0.2"
            assert flight[0]["decision"]["corr"] == "t0.2"
            server.stop()
            await server.serve_until_stopped()

        _run(scenario())

    def test_rejection_feeds_slo_and_counter(self):
        async def scenario():
            server = await _start(admission_limit=0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            response = await _ask(
                reader, writer, {"op": "call", "tenant": "t9", "function": "f"}
            )
            assert response["ok"] is False
            assert response["error"] == "overloaded"
            telemetry = server.telemetry
            assert telemetry.slo.snapshot()["t9"]["rejections"] == 1
            snap = telemetry.metrics.snapshot()
            assert snap["service.rejected{tenant=t9}"] == 1
            server.stop()
            await server.serve_until_stopped()

        _run(scenario())

    def test_engine_error_becomes_structured_record(self):
        async def scenario():
            server = await _start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # A call for an unprofiled function raises ValueError in the
            # engine; the response is an error, the record is structured.
            response = await _ask(
                reader,
                writer,
                {"op": "call", "tenant": "t0", "function": "ghost"},
            )
            assert response["ok"] is False
            telemetry = server.telemetry
            assert len(telemetry.errors) == 1
            record = telemetry.errors[0]
            assert record["type"] == "ValueError"
            assert record["where"] == "engine.observe"
            assert telemetry.metrics.snapshot()[
                "service.errors{type=ValueError}"
            ] == 1
            server.stop()
            await server.serve_until_stopped()

        _run(scenario())

    def test_drain_dumps_flight_and_healthz_goes_503(self, tmp_path):
        async def scenario():
            server = await _start(flight_dir=str(tmp_path))
            await _drive_decisions(server, count=2)
            server.stop()
            # Once draining, readers stop serving new requests, so probe
            # the handler directly: liveness must flip to 503.
            raw = server.admin.handle("GET", "/healthz")
            assert raw.startswith(b"HTTP/1.0 503 ")
            assert b'"draining": true' in raw
            await server.serve_until_stopped()

        _run(scenario())
        bundles = list(tmp_path.glob("flight-*-drain.jsonl"))
        assert len(bundles) == 1
        header, entries = read_flight_bundle(str(bundles[0]))
        assert header["reason"] == "drain"
        assert len(entries) == 2


class TestTelemetryOffParity:
    def test_server_without_telemetry_still_serves_admin_surface(self):
        async def scenario():
            engine = DecisionEngine()  # no telemetry plane
            server = DecisionServer(engine, ServerConfig())
            await server.start()
            status, body = await _admin(server, "GET", "/healthz")
            assert status == 200
            status, body = await _admin(server, "GET", "/statusz")
            doc = json.loads(body)
            assert doc["telemetry"] == {"enabled": False}
            assert "slo" not in doc
            status, body = await _admin(server, "GET", "/metricsz")
            assert status == 200
            validate_exposition(body.decode())
            status, body = await _admin(server, "GET", "/flightz")
            assert status == 409
            server.stop()
            await server.serve_until_stopped()

        _run(scenario())
