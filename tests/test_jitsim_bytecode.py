"""Tests for the mini-VM bytecode and assembler."""

import pytest

from repro.jitsim import BytecodeError, BytecodeFunction, Instr, Program, assemble


class TestInstr:
    def test_valid(self):
        Instr("PUSH", 3)
        Instr("ADD")
        Instr("CALL", "foo")

    def test_unknown_opcode(self):
        with pytest.raises(BytecodeError, match="unknown opcode"):
            Instr("FLY", 1)

    def test_missing_int_arg(self):
        with pytest.raises(BytecodeError, match="int argument"):
            Instr("PUSH")

    def test_wrong_arg_type(self):
        with pytest.raises(BytecodeError, match="int argument"):
            Instr("LOAD", "x")

    def test_call_needs_name(self):
        with pytest.raises(BytecodeError, match="function name"):
            Instr("CALL", 3)

    def test_no_arg_opcodes_reject_args(self):
        with pytest.raises(BytecodeError, match="no argument"):
            Instr("ADD", 1)

    def test_str(self):
        assert str(Instr("PUSH", 3)) == "PUSH 3"
        assert str(Instr("ADD")) == "ADD"


class TestBytecodeFunction:
    def _ret(self):
        return (Instr("PUSH", 0), Instr("RET"))

    def test_valid(self):
        BytecodeFunction("f", 0, 0, self._ret())

    def test_locals_must_cover_params(self):
        with pytest.raises(BytecodeError, match="num_locals"):
            BytecodeFunction("f", 2, 1, self._ret())

    def test_empty_code_rejected(self):
        with pytest.raises(BytecodeError, match="empty"):
            BytecodeFunction("f", 0, 0, ())

    def test_missing_ret_rejected(self):
        with pytest.raises(BytecodeError, match="RET"):
            BytecodeFunction("f", 0, 0, (Instr("PUSH", 1),))

    def test_jump_target_bounds(self):
        with pytest.raises(BytecodeError, match="jump target"):
            BytecodeFunction("f", 0, 0, (Instr("JMP", 5), Instr("RET")))

    def test_local_slot_bounds(self):
        with pytest.raises(BytecodeError, match="local slot"):
            BytecodeFunction("f", 0, 1, (Instr("LOAD", 3), Instr("RET")))

    def test_back_edge_count(self):
        func = BytecodeFunction(
            "f",
            0,
            0,
            (
                Instr("PUSH", 1),
                Instr("JZ", 3),
                Instr("JMP", 0),  # backward
                Instr("PUSH", 0),
                Instr("RET"),
            ),
        )
        assert func.back_edge_count() == 1

    def test_call_targets(self):
        func = BytecodeFunction(
            "f", 0, 0, (Instr("CALL", "g"), Instr("RET"))
        )
        assert func.call_targets() == ["g"]

    def test_size(self):
        func = BytecodeFunction("f", 0, 0, self._ret())
        assert func.size == 2


class TestProgram:
    def test_undefined_entry(self):
        f = BytecodeFunction("f", 0, 0, (Instr("PUSH", 0), Instr("RET")))
        with pytest.raises(BytecodeError, match="entry"):
            Program.from_functions([f], entry="main")

    def test_undefined_callee(self):
        f = BytecodeFunction("f", 0, 0, (Instr("CALL", "g"), Instr("RET")))
        with pytest.raises(BytecodeError, match="undefined function"):
            Program.from_functions([f], entry="f")

    def test_duplicate_names(self):
        f1 = BytecodeFunction("f", 0, 0, (Instr("PUSH", 0), Instr("RET")))
        f2 = BytecodeFunction("f", 0, 0, (Instr("PUSH", 1), Instr("RET")))
        with pytest.raises(BytecodeError, match="duplicate"):
            Program.from_functions([f1, f2], entry="f")


class TestAssembler:
    def test_basic(self):
        func = assemble("f", 0, 1, "PUSH 42\nSTORE 0\nLOAD 0\nRET")
        assert func.size == 4
        assert func.code[0] == Instr("PUSH", 42)

    def test_labels_resolve(self):
        func = assemble(
            "f",
            0,
            0,
            """
            start:
                PUSH 1
                JZ end
                JMP start
            end:
                PUSH 0
                RET
            """,
        )
        assert func.code[1] == Instr("JZ", 3)
        assert func.code[2] == Instr("JMP", 0)

    def test_comments_and_blank_lines(self):
        func = assemble("f", 0, 0, "# header\n\nPUSH 1  # inline\nRET\n")
        assert func.size == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(BytecodeError, match="duplicate"):
            assemble("f", 0, 0, "x:\nx:\nPUSH 0\nRET")

    def test_bad_int_arg(self):
        with pytest.raises(BytecodeError, match="bad argument"):
            assemble("f", 0, 0, "PUSH abc\nRET")

    def test_unknown_label_is_bad_argument(self):
        with pytest.raises(BytecodeError):
            assemble("f", 0, 0, "JMP nowhere\nPUSH 0\nRET")
