"""Tests for the external call-log / cost-table importer."""

import pytest

from repro.core import iar_schedule, simulate
from repro.core.model import ModelError
from repro.workloads.call_log import (
    instance_from_logs,
    parse_call_log,
    parse_cost_table,
)

COSTS = """name,c0,c1,e0,e1
alpha,10,100,5,1
beta,12,90,4,2
"""

LOG = """# warmup
0.0 alpha
0.5 beta
alpha
alpha
"""


class TestParseCallLog:
    def test_basic(self):
        assert parse_call_log(LOG) == ("alpha", "beta", "alpha", "alpha")

    def test_comments_and_blanks(self):
        assert parse_call_log("\n# x\nalpha\n\n") == ("alpha",)

    def test_bad_timestamp(self):
        with pytest.raises(ValueError, match="timestamp"):
            parse_call_log("notanumber alpha")

    def test_too_many_fields(self):
        with pytest.raises(ValueError, match="too many"):
            parse_call_log("1.0 alpha extra")

    def test_empty_log(self):
        assert parse_call_log("") == ()


class TestParseCostTable:
    def test_basic(self):
        profiles = parse_cost_table(COSTS)
        assert profiles["alpha"].compile_times == (10.0, 100.0)
        assert profiles["beta"].exec_times == (4.0, 2.0)

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            parse_cost_table("")

    def test_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            parse_cost_table("func,c0,e0\na,1,2")

    def test_mismatched_levels(self):
        with pytest.raises(ValueError, match="matching"):
            parse_cost_table("name,c0,c1,e0\na,1,2,3")

    def test_wrong_field_count(self):
        with pytest.raises(ValueError, match="fields"):
            parse_cost_table("name,c0,e0\na,1")

    def test_duplicate_function(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_cost_table("name,c0,e0\na,1,2\na,1,2")

    def test_non_numeric(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_cost_table("name,c0,e0\na,one,2")

    def test_monotonicity_enforced(self):
        with pytest.raises(ModelError):
            parse_cost_table("name,c0,c1,e0,e1\na,10,5,1,1")

    def test_no_rows(self):
        with pytest.raises(ValueError, match="no data"):
            parse_cost_table("name,c0,e0\n")


class TestInstanceFromLogs:
    def test_end_to_end_text(self):
        inst = instance_from_logs(LOG, COSTS, from_files=False, name="ext")
        assert inst.num_calls == 4
        assert inst.call_count("alpha") == 3
        sched = iar_schedule(inst)
        sched.validate(inst)
        assert simulate(inst, sched, validate=False).makespan > 0

    def test_end_to_end_files(self, tmp_path):
        log = tmp_path / "calls.log"
        costs = tmp_path / "costs.csv"
        log.write_text(LOG)
        costs.write_text(COSTS)
        inst = instance_from_logs(log, costs)
        assert inst.num_functions == 2

    def test_missing_costs_reported(self):
        with pytest.raises(ValueError, match="absent"):
            instance_from_logs("gamma\n", COSTS, from_files=False)
