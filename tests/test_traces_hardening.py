"""Hardened trace/schedule loaders: every malformed shape is a
structured error with a stable prefix, never a raw KeyError/TypeError."""

import json
import random

import pytest

from repro.core.model import ModelError
from repro.core.schedule import ScheduleError
from repro.workloads import WorkloadSpec, generate
from repro.workloads.traces import (
    from_json,
    load,
    load_schedule,
    schedule_from_json,
    schedule_to_json,
    to_json,
)
from repro.core import iar_schedule


@pytest.fixture(scope="module")
def instance():
    return generate(
        WorkloadSpec(name="hard", num_functions=4, num_calls=30, num_levels=3),
        seed=3,
    )


def valid_doc(instance):
    return json.loads(to_json(instance))


class TestTraceErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",                       # empty file
            "{not json",              # syntax error
            "[1, 2, 3]",              # not an object
            '"just a string"',
            "null",
        ],
    )
    def test_bad_documents(self, text):
        with pytest.raises(ModelError, match="^trace:"):
            from_json(text)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("version"),
            lambda d: d.update(version=99),
            lambda d: d.update(version="1"),
            lambda d: d.pop("functions"),
            lambda d: d.update(functions={}),
            lambda d: d.pop("calls"),
            lambda d: d.update(calls=7),
            lambda d: d.update(name=12),
            lambda d: d["functions"].append("not-an-object"),
            lambda d: d["functions"].append({"compile_times": [1.0]}),
            lambda d: d["functions"].append(dict(d["functions"][0])),  # dup
            lambda d: d["functions"][0].pop("compile_times"),
            lambda d: d["functions"][0].update(compile_times=[]),
            lambda d: d["functions"][0].update(compile_times="fast"),
            lambda d: d["functions"][0].update(exec_times=[1.0, "slow"]),
            lambda d: d["functions"][0].update(exec_times=[True, False]),
            lambda d: d["functions"][0].update(compile_times=[-1.0]),
            lambda d: d["functions"][0].update(
                compile_times=[float("nan")]
            ),
            lambda d: d["functions"][0].update(
                exec_times=[float("inf"), 1.0]
            ),
            # mismatched level counts (FunctionProfile invariant)
            lambda d: d["functions"][0].update(
                compile_times=[1.0], exec_times=[2.0, 1.0]
            ),
            lambda d: d["calls"].append(10 ** 6),   # out of range
            lambda d: d["calls"].append(-1),
            lambda d: d["calls"].append(True),      # bool is not an index
            lambda d: d["calls"].append("f0"),      # names not allowed
        ],
    )
    def test_mutated_documents(self, instance, mutate):
        doc = valid_doc(instance)
        mutate(doc)
        with pytest.raises(ModelError, match="^trace:"):
            from_json(json.dumps(doc))

    def test_version_message_mentions_version(self, instance):
        doc = valid_doc(instance)
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            from_json(json.dumps(doc))

    def test_fuzz_random_bytes_never_leak_raw_errors(self):
        rng = random.Random(0)
        corpus = ['{"version":1', "[[", "{}", '{"a"', "tru", "\x00\x01"]
        for _ in range(200):
            if rng.random() < 0.5:
                text = "".join(
                    chr(rng.randrange(32, 127)) for _ in range(rng.randrange(0, 40))
                )
            else:
                text = rng.choice(corpus) + "".join(
                    chr(rng.randrange(32, 127)) for _ in range(rng.randrange(0, 10))
                )
            with pytest.raises(ModelError, match="^trace:"):
                from_json(text)

    def test_fuzz_structured_mutations(self, instance):
        """Randomly corrupt one field of a valid document; the loader
        either accepts it (still well-formed) or raises ModelError —
        never anything else."""
        rng = random.Random(1)
        junk = [None, True, -3, 1.5, "x", [], {}, float("nan"), [None]]
        for _ in range(150):
            doc = valid_doc(instance)
            target = rng.choice(["version", "name", "functions", "calls"])
            if rng.random() < 0.4:
                doc[target] = rng.choice(junk)
            elif target == "functions" and doc["functions"]:
                entry = rng.choice(doc["functions"])
                entry[rng.choice(["name", "compile_times", "exec_times"])] = (
                    rng.choice(junk)
                )
            elif target == "calls" and doc["calls"]:
                doc["calls"][rng.randrange(len(doc["calls"]))] = rng.choice(junk)
            else:
                doc.pop(target, None)
            try:
                from_json(json.dumps(doc))
            except ModelError as exc:
                assert str(exc).startswith("trace:")

    def test_round_trip_still_works(self, instance):
        assert from_json(to_json(instance)) == instance

    def test_load_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load(tmp_path / "missing.json")


class TestScheduleErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "not json",
            "[]",
            '{"version":1}',                      # no tasks
            '{"version":2,"tasks":[]}',           # bad version
            '{"version":1,"tasks":{}}',
            '{"version":1,"tasks":[["f0"]]}',     # not a pair
            '{"version":1,"tasks":[["f0",0,1]]}',
            '{"version":1,"tasks":["f0"]}',
            '{"version":1,"tasks":[[0,0]]}',      # function not a string
            '{"version":1,"tasks":[["",0]]}',     # empty name
            '{"version":1,"tasks":[["f0","0"]]}', # level not an int
            '{"version":1,"tasks":[["f0",true]]}',
            '{"version":1,"tasks":[["f0",-1]]}',
        ],
    )
    def test_bad_documents(self, text):
        with pytest.raises(ScheduleError, match="^schedule:"):
            schedule_from_json(text)

    def test_unknown_function_with_instance(self, instance):
        text = '{"version":1,"tasks":[["ghost",0]]}'
        schedule_from_json(text)  # fine without an instance
        with pytest.raises(ScheduleError, match="unknown function"):
            schedule_from_json(text, instance=instance)

    def test_out_of_range_level_with_instance(self, instance):
        fname = next(iter(instance.profiles))
        levels = instance.profiles[fname].num_levels
        text = json.dumps(
            {"version": 1, "tasks": [[fname, levels]]}
        )
        with pytest.raises(ScheduleError, match="out of range"):
            schedule_from_json(text, instance=instance)

    def test_round_trip_with_validation(self, instance, tmp_path):
        schedule = iar_schedule(instance)
        path = tmp_path / "sched.json"
        path.write_text(schedule_to_json(schedule))
        assert load_schedule(path, instance=instance) == schedule

    def test_errors_are_value_errors(self):
        # The CLI's top-level handler catches ValueError.
        with pytest.raises(ValueError):
            schedule_from_json("[]")
