"""Due-date objectives (max tardiness, weighted tardiness, weighted
completion) behind the engine seam: semantics on hand-checked examples,
bitwise equality across reference/fast/vector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DueDateObjectives,
    DueDateTable,
    FastSimulator,
    FunctionProfile,
    ModelError,
    OCSPInstance,
    Schedule,
    VectorSimulator,
    due_date_objectives,
    objectives_from_timeline,
    simulate,
)
from repro.core.engine import ENGINES, ReferenceSimulator


@pytest.fixture()
def instance():
    profiles = {
        "a": FunctionProfile("a", (1.0, 3.0), (4.0, 1.0)),
        "b": FunctionProfile("b", (2.0,), (5.0,)),
    }
    return OCSPInstance(profiles, ("a", "b", "a"), name="due")


@pytest.fixture()
def schedule():
    return Schedule.of(("a", 0), ("b", 0))


class TestSemantics:
    def test_hand_checked_values(self, instance, schedule):
        # Single compile thread: compile a (1.0), run a (4.0) -> C_a
        # candidates; compile b (2.0), run b (5.0); run a again (4.0).
        due = DueDateTable({"a": (10.0, 2.0), "b": (4.0, 1.0)})
        obj = due_date_objectives(instance, schedule, due)
        result = simulate(instance, schedule, record_timeline=True)
        finishes = {}
        for timing in result.call_timings:
            finishes[timing.function] = max(
                finishes.get(timing.function, 0.0), timing.finish
            )
        want_max = max(
            max(0.0, finishes["a"] - 10.0), max(0.0, finishes["b"] - 4.0)
        )
        assert obj.makespan == result.makespan
        assert obj.max_tardiness == want_max
        assert obj.num_jobs == 2
        assert obj.completions["a"] == finishes["a"]

    def test_completion_is_last_invocation(self, instance, schedule):
        due = DueDateTable({"a": (0.0, 1.0)})
        obj = due_date_objectives(instance, schedule, due)
        result = simulate(instance, schedule, record_timeline=True)
        last_a = max(t.finish for t in result.call_timings if t.function == "a")
        assert obj.completions == {"a": last_a}
        assert obj.total_weighted_tardiness == last_a  # due 0, weight 1

    def test_on_time_function_contributes_zero_tardiness(
        self, instance, schedule
    ):
        due = DueDateTable({"a": (1e9, 3.0)})
        obj = due_date_objectives(instance, schedule, due)
        assert obj.max_tardiness == 0.0
        assert obj.total_weighted_tardiness == 0.0
        assert obj.num_late == 0

    def test_uncalled_dued_function_is_skipped(self, schedule):
        profiles = {
            "a": FunctionProfile("a", (1.0,), (4.0,)),
            "b": FunctionProfile("b", (2.0,), (5.0,)),
        }
        instance = OCSPInstance(profiles, ("a",), name="uncalled")
        due = DueDateTable({"a": (0.0, 1.0), "b": (0.0, 1.0)})
        obj = due_date_objectives(instance, Schedule.of(("a", 0)), due)
        assert obj.num_jobs == 1
        assert "b" not in obj.completions

    def test_as_dict_round_trips_fields(self, instance, schedule):
        due = DueDateTable({"a": (5.0, 1.0)})
        obj = due_date_objectives(instance, schedule, due)
        doc = obj.as_dict()
        assert doc["makespan"] == obj.makespan
        assert doc["max_tardiness"] == obj.max_tardiness
        assert doc["num_late"] == obj.num_late

    def test_requires_timeline(self, instance, schedule):
        result = simulate(instance, schedule)
        with pytest.raises(ValueError, match="timeline"):
            objectives_from_timeline(result, DueDateTable({"a": (1.0, 1.0)}))


class TestTableValidation:
    def test_unknown_function_rejected_on_validate(self, instance):
        table = DueDateTable({"ghost": (1.0, 1.0)})
        with pytest.raises(ModelError, match="ghost"):
            table.validate_against(instance)

    @pytest.mark.parametrize(
        "entries",
        [
            {"a": (-1.0, 1.0)},             # negative due
            {"a": (1.0, -1.0)},             # negative weight
            {"a": (float("nan"), 1.0)},
            {"a": (1.0, float("inf"))},
            {"a": (True, 1.0)},             # bool is not a number
            {"": (1.0, 1.0)},               # empty name
        ],
    )
    def test_malformed_entries(self, entries):
        with pytest.raises(ModelError):
            DueDateTable(entries)

    def test_items_sorted(self):
        table = DueDateTable({"z": (1.0, 1.0), "a": (2.0, 2.0)})
        assert [name for name, _ in table.items()] == ["a", "z"]


class TestEngineSeam:
    def test_all_engines_bitwise_identical(self, instance, schedule):
        due = DueDateTable({"a": (3.0, 2.0), "b": (4.5, 1.5)})
        objs = [
            due_date_objectives(instance, schedule, due, engine=engine)
            for engine in ENGINES
        ]
        assert objs[0] == objs[1] == objs[2]

    def test_simulator_methods_agree(self, instance, schedule):
        due = DueDateTable({"a": (3.0, 2.0), "b": (4.5, 1.5)})
        tasks = tuple(schedule)
        ref = ReferenceSimulator(instance).due_objectives(tasks, due)
        fast = FastSimulator(instance).due_objectives(tasks, due)
        vec = VectorSimulator(instance).due_objectives(tasks, due)
        assert ref == fast == vec
        assert isinstance(ref, DueDateObjectives)

    def test_vector_fallback_without_numpy(self, instance, schedule):
        due = DueDateTable({"a": (3.0, 2.0)})
        sim = VectorSimulator(instance)
        sim._np = None  # force the inherited pure-Python path
        fallback = sim.due_objectives(tuple(schedule), due)
        fast = FastSimulator(instance).due_objectives(tuple(schedule), due)
        assert fallback == fast

    @settings(max_examples=40, deadline=None)
    @given(
        dues=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=2,
        ),
        threads=st.integers(min_value=1, max_value=3),
    )
    def test_property_engines_agree(self, dues, threads):
        profiles = {
            "a": FunctionProfile("a", (1.0, 3.0), (4.0, 1.0)),
            "b": FunctionProfile("b", (2.0,), (5.0,)),
        }
        instance = OCSPInstance(profiles, ("a", "b", "a"), name="due")
        schedule = Schedule.of(("a", 0), ("b", 0))
        names = ["a", "b"]
        due = DueDateTable(
            {names[i]: pair for i, pair in enumerate(dues)}
        )
        objs = [
            due_date_objectives(
                instance, schedule, due, compile_threads=threads, engine=e
            )
            for e in ENGINES
        ]
        assert objs[0] == objs[1] == objs[2]
