"""Flight recorder tests: ring eviction, atomic dumps, bundle validation."""

import json
import os

import pytest

from repro.telemetry import FlightRecorder, read_flight_bundle


class FakeWall:
    def __init__(self, start=1_700_000_000.0):
        self.now = start

    def __call__(self):
        self.now += 1.0
        return self.now


class TestFlightRecorder:
    def test_ring_evicts_oldest_per_shard(self):
        recorder = FlightRecorder(shards=2, capacity=3, wall=FakeWall())
        for i in range(10):
            recorder.record(i % 2, {"i": i})
        assert recorder.recorded == 10
        assert recorder.occupancy() == [3, 3]
        retained = [entry["i"] for entry in recorder.entries()]
        # The last three per shard survive, merged in arrival order.
        assert retained == [4, 5, 6, 7, 8, 9]

    def test_entries_sorted_by_global_order(self):
        recorder = FlightRecorder(shards=3, capacity=8, wall=FakeWall())
        for i in range(12):
            recorder.record((i * 7) % 3, {"i": i})
        orders = [entry["order"] for entry in recorder.entries()]
        assert orders == sorted(orders)
        assert orders == list(range(1, 13))

    def test_record_stamps_without_mutating_caller_dict(self):
        recorder = FlightRecorder(shards=1, capacity=4, wall=FakeWall())
        entry = {"corr": "t1.1"}
        recorder.record(0, entry)
        assert entry == {"corr": "t1.1"}
        stamped = next(recorder.entries())
        assert stamped["order"] == 1
        assert stamped["shard"] == 0
        assert stamped["wall_ts"] > 0

    def test_shard_out_of_range(self):
        recorder = FlightRecorder(shards=2, capacity=4)
        with pytest.raises(ValueError, match="out of range"):
            recorder.record(2, {})
        with pytest.raises(ValueError, match="out of range"):
            recorder.record(-1, {})

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            FlightRecorder(shards=0)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDumpAndRead:
    def _filled(self, entries=20):
        recorder = FlightRecorder(shards=4, capacity=8, wall=FakeWall())
        for i in range(entries):
            recorder.record(i % 4, {"i": i, "corr": f"t.{i}"})
        return recorder

    def test_dump_round_trips(self, tmp_path):
        recorder = self._filled()
        path = recorder.dump(str(tmp_path), "unit")
        assert os.path.basename(path).startswith("flight-")
        assert path.endswith("-unit.jsonl")
        header, entries = read_flight_bundle(path)
        assert header["kind"] == "repro-flight"
        assert header["version"] == 1
        assert header["reason"] == "unit"
        assert header["recorded"] == 20
        assert header["dumped"] == len(entries) == 20
        assert [entry["i"] for entry in entries] == list(range(20))
        assert recorder.dumps == 1

    def test_dump_collision_gets_suffix(self, tmp_path):
        recorder = self._filled(entries=2)
        # FakeWall advances by seconds; freeze the timestamp so both
        # dumps contend for the same file name.
        recorder.wall = lambda: 1_700_000_000.0
        first = recorder.dump(str(tmp_path), "same")
        second = recorder.dump(str(tmp_path), "same")
        assert first != second
        assert second.endswith(".1.jsonl")
        for path in (first, second):
            read_flight_bundle(path)

    def test_dump_leaves_no_temp_files(self, tmp_path):
        self._filled().dump(str(tmp_path), "clean")
        leftovers = [name for name in os.listdir(tmp_path) if ".tmp." in name]
        assert leftovers == []

    def test_read_rejects_corruption(self, tmp_path):
        recorder = self._filled(entries=4)
        path = recorder.dump(str(tmp_path), "ok")
        lines = open(path).read().splitlines()

        def write(name, content_lines):
            p = tmp_path / name
            p.write_text("\n".join(content_lines) + "\n")
            return str(p)

        with pytest.raises(ValueError, match="empty"):
            read_flight_bundle(write("empty.jsonl", []))
        with pytest.raises(ValueError, match="unreadable header"):
            read_flight_bundle(write("garbage.jsonl", ["not json"]))
        with pytest.raises(ValueError, match="not a repro-flight"):
            read_flight_bundle(write("foreign.jsonl", ['{"kind": "other"}']))
        future = json.loads(lines[0])
        future["version"] = 99
        with pytest.raises(ValueError, match="unsupported flight version"):
            read_flight_bundle(
                write("future.jsonl", [json.dumps(future)] + lines[1:])
            )
        with pytest.raises(ValueError, match="out of order"):
            read_flight_bundle(
                write("shuffled.jsonl", [lines[0], lines[2], lines[1]] + lines[3:])
            )
        with pytest.raises(ValueError, match="header says"):
            read_flight_bundle(write("truncated.jsonl", lines[:-1]))
        entry_sans_order = dict(json.loads(lines[1]))
        del entry_sans_order["order"]
        with pytest.raises(ValueError, match="missing 'order'"):
            read_flight_bundle(
                write("noorder.jsonl", [lines[0], json.dumps(entry_sans_order)])
            )

    def test_snapshot(self):
        recorder = self._filled(entries=10)
        snap = recorder.snapshot()
        assert snap["shards"] == 4
        assert snap["capacity"] == 8
        assert snap["recorded"] == 10
        assert snap["retained"] == 10
        assert snap["dumps"] == 0
        assert snap["occupancy"] == [3, 3, 2, 2]
