"""Tests for the NP-completeness reductions (Theorem 2)."""

import itertools

import pytest

from repro.core import simulate
from repro.core.complexity import (
    extract_partition_subset,
    ocsp_from_3sat,
    ocsp_from_partition,
    partition_from_subset_sum,
    schedule_from_partition_subset,
    solve_partition,
    subset_sum_from_3sat,
    verify_partition_subset,
)


def brute_force_partition(values):
    """Reference solver: try every subset."""
    total = sum(values)
    if total % 2:
        return None
    target = total // 2
    for r in range(len(values) + 1):
        for combo in itertools.combinations(range(len(values)), r):
            if sum(values[i] for i in combo) == target:
                return set(combo)
    return None


class TestSolvePartition:
    @pytest.mark.parametrize(
        "values",
        [
            [1, 1],
            [3, 1, 2, 2],
            [5, 5, 4, 3, 2, 1],
            [2, 2, 2, 2],
            [7, 3, 2, 1, 1],
            [10, 9, 8, 7, 6, 5, 4, 3, 2, 1],  # wait: sum 55, odd
        ],
    )
    def test_matches_brute_force(self, values):
        expected = brute_force_partition(values)
        got = solve_partition(values)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert sum(values[i] for i in got) == sum(values) // 2

    def test_odd_total_unsolvable(self):
        assert solve_partition([1, 2]) is None

    def test_even_total_but_no_partition(self):
        assert solve_partition([1, 1, 4]) is None

    def test_empty_has_trivial_partition(self):
        assert solve_partition([]) == set()


class TestConstruction:
    def test_instance_shape(self):
        red = ocsp_from_partition([3, 1, 2, 2])
        inst = red.instance
        assert inst.num_calls == 4 + 2  # middles + first + last
        assert red.target == 4
        assert red.optimal_makespan == 2 * (1 + 4 + 4)

    def test_middle_function_costs(self):
        red = ocsp_from_partition([3, 1, 2, 2])
        prof = red.instance.profiles["m0"]
        assert prof.compile_times == (1.0, 4.0)
        assert prof.exec_times == (4.0, 1.0)

    def test_first_and_last_functions(self):
        red = ocsp_from_partition([3, 1, 2, 2])
        first = red.instance.profiles["__first__"]
        last = red.instance.profiles["__last__"]
        t_plus_n = 4 + 4
        assert first.compile_times[0] == 1.0
        assert first.exec_times[0] == t_plus_n
        assert last.compile_times[0] == t_plus_n
        assert last.exec_times[0] == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ocsp_from_partition([-1, 1])

    def test_rejects_odd_total(self):
        with pytest.raises(ValueError, match="odd"):
            ocsp_from_partition([1, 2])


class TestForwardDirection:
    """A partition subset yields a schedule meeting the bound."""

    @pytest.mark.parametrize(
        "values",
        [[1, 1], [3, 1, 2, 2], [5, 5, 4, 3, 2, 1], [2, 2, 2, 2], [0, 0]],
    )
    def test_witness_schedule_achieves_bound(self, values):
        red = ocsp_from_partition(values)
        subset = solve_partition(values)
        assert subset is not None
        assert verify_partition_subset(red, subset)
        sched = schedule_from_partition_subset(red, subset)
        result = simulate(red.instance, sched, compile_threads=1)
        assert result.makespan == pytest.approx(red.optimal_makespan)

    def test_non_partition_subset_misses_bound(self):
        values = [3, 1, 2, 2]
        red = ocsp_from_partition(values)
        bad = {0, 1}  # sums to 4 == target... pick a non-partition one
        assert sum(values[i] for i in bad) == red.target  # actually valid
        truly_bad = {0}  # sums to 3 != 4
        sched = schedule_from_partition_subset(red, truly_bad)
        result = simulate(red.instance, sched)
        assert result.makespan > red.optimal_makespan


class TestConverseDirection:
    """A schedule meeting the bound encodes a partition."""

    def test_extract_from_witness(self):
        values = [3, 1, 2, 2]
        red = ocsp_from_partition(values)
        subset = solve_partition(values)
        sched = schedule_from_partition_subset(red, subset)
        extracted = extract_partition_subset(red, sched)
        assert extracted is not None
        assert sum(values[i] for i in extracted) == red.target

    def test_extract_fails_for_bad_schedule(self):
        values = [3, 1, 2, 2]
        red = ocsp_from_partition(values)
        sched = schedule_from_partition_subset(red, {0})
        assert extract_partition_subset(red, sched) is None

    def test_exhaustive_equivalence_small(self):
        """For every subset choice: bound met <=> subset is a partition."""
        values = [2, 1, 1, 2]
        red = ocsp_from_partition(values)
        for r in range(len(values) + 1):
            for combo in itertools.combinations(range(len(values)), r):
                subset = set(combo)
                sched = schedule_from_partition_subset(red, subset)
                span = simulate(red.instance, sched).makespan
                if verify_partition_subset(red, subset):
                    assert span == pytest.approx(red.optimal_makespan)
                else:
                    assert span > red.optimal_makespan


SAT_FORMULA = [(1, 2, 3), (-1, 2, 3), (1, -2, 3)]  # satisfiable
UNSAT_FORMULA = [
    (1, 2, 3), (1, 2, -3), (1, -2, 3), (1, -2, -3),
    (-1, 2, 3), (-1, 2, -3), (-1, -2, 3), (-1, -2, -3),
]  # all sign patterns over x1..x3: unsatisfiable


def brute_force_sat(clauses):
    variables = sorted({abs(l) for c in clauses for l in c})
    for bits in itertools.product([False, True], repeat=len(variables)):
        assign = dict(zip(variables, bits))
        if all(
            any((lit > 0) == assign[abs(lit)] for lit in clause)
            for clause in clauses
        ):
            return assign
    return None


class TestThreeSatChain:
    def test_subset_sum_reduction_satisfiable(self):
        values, target = subset_sum_from_3sat(SAT_FORMULA)
        assert brute_force_sat(SAT_FORMULA) is not None
        # A subset summing to target exists (check with DP on the
        # derived PARTITION instance).
        partition_values = partition_from_subset_sum(values, target)
        assert solve_partition(partition_values) is not None

    def test_subset_sum_reduction_unsatisfiable(self):
        assert brute_force_sat(UNSAT_FORMULA) is None
        values, target = subset_sum_from_3sat(UNSAT_FORMULA)
        partition_values = partition_from_subset_sum(values, target)
        assert solve_partition(partition_values) is None

    def test_ocsp_from_3sat_satisfiable(self):
        red = ocsp_from_3sat(SAT_FORMULA)
        partition_values = red.values
        subset = solve_partition(list(partition_values))
        assert subset is not None
        sched = schedule_from_partition_subset(red, subset)
        span = simulate(red.instance, sched).makespan
        assert span == pytest.approx(red.optimal_makespan)

    def test_rejects_empty_formula(self):
        with pytest.raises(ValueError):
            subset_sum_from_3sat([])

    def test_rejects_repeated_variable_in_clause(self):
        with pytest.raises(ValueError, match="distinct"):
            subset_sum_from_3sat([(1, 1, 2)])

    def test_partition_from_subset_sum_bounds(self):
        with pytest.raises(ValueError):
            partition_from_subset_sum([1, 2], 10)

    def test_partition_from_subset_sum_equivalence(self):
        # subset of [3,5,2] summing to 5 exists
        values = [3, 5, 2]
        derived = partition_from_subset_sum(values, 5)
        assert solve_partition(derived) is not None
        # no subset sums to 9
        derived = partition_from_subset_sum(values, 9)
        assert solve_partition(derived) is None
