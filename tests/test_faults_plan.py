"""Graceful degradation of planned schedules (repro.faults.degrade)."""

import pytest

from repro.core import Schedule, iar_schedule, lower_bound, simulate
from repro.faults import (
    FaultInjector,
    FaultSpec,
    apply_to_schedule,
    faulty_scheme_comparison,
    simulate_with_faults,
)
from repro.analysis.experiments import scheme_comparison
from repro.vm.costbenefit import EstimatedModel
from repro.workloads import WorkloadSpec, generate


@pytest.fixture(scope="module")
def instance():
    spec = WorkloadSpec(
        name="degrade", num_functions=10, num_calls=200, num_levels=4
    )
    return generate(spec, seed=5)


@pytest.fixture(scope="module")
def schedule(instance):
    return iar_schedule(instance)


class TestApplyToSchedule:
    def test_null_plan_is_clean(self, instance, schedule):
        plan = apply_to_schedule(instance, schedule, FaultInjector(""))
        assert plan.tasks == schedule
        assert all(plan.installs)
        assert not plan.degraded
        assert plan.compile_times == tuple(
            instance.profiles[t.function].compile_times[t.level]
            for t in schedule
        )

    def test_deterministic(self, instance, schedule):
        spec = FaultSpec(compile_fail=0.4, stall=0.3)
        plans = [
            apply_to_schedule(instance, schedule, FaultInjector(spec))
            for _ in range(2)
        ]
        assert plans[0] == plans[1]

    def test_failed_attempts_kept_but_not_installed(self, instance, schedule):
        plan = apply_to_schedule(
            instance, schedule, FaultInjector(FaultSpec(compile_fail=0.5))
        )
        assert plan.failures > 0
        assert len(plan.tasks) == len(plan.compile_times) == len(plan.installs)
        assert plan.installs.count(False) == plan.failures
        # Failed attempts still charge thread time.
        assert plan.wasted_compile_time == pytest.approx(
            sum(
                c
                for c, ok in zip(plan.compile_times, plan.installs)
                if not ok
            )
        )

    def test_every_scheduled_function_installs(self, instance, schedule):
        plan = apply_to_schedule(
            instance,
            schedule,
            FaultInjector(FaultSpec(compile_fail=0.9, retries=0)),
        )
        installed = {
            t.function for t, ok in zip(plan.tasks, plan.installs) if ok
        }
        assert installed == {t.function for t in schedule}
        assert plan.forced_installs > 0

    def test_counters_delta_matches_injector(self, instance, schedule):
        injector = FaultInjector(FaultSpec(compile_fail=0.4, stall=0.2))
        first = apply_to_schedule(instance, schedule, injector)
        second = apply_to_schedule(instance, schedule, injector)
        # One injector, two plans: tallies accumulate, deltas match.
        assert first.summary() == second.summary()
        assert injector.tally["compile_failures"] == 2 * first.failures
        assert injector.wasted_compile_time == pytest.approx(
            2 * first.wasted_compile_time
        )

    def test_stall_scales_compile_times(self, instance, schedule):
        plan = apply_to_schedule(
            instance,
            schedule,
            FaultInjector(FaultSpec(stall=1.0, stall_factor=4.0)),
        )
        assert plan.stalls == len(plan.tasks)
        assert all(plan.installs)
        for task, charged in zip(plan.tasks, plan.compile_times):
            truth = instance.profiles[task.function].compile_times[task.level]
            assert charged == 4.0 * truth


class TestSimulateWithFaults:
    def test_null_bitwise_equals_clean(self, instance, schedule):
        clean = simulate(instance, schedule, record_timeline=True)
        for engine in ("reference", "fast"):
            result, plan = simulate_with_faults(
                instance, schedule, "", engine=engine, record_timeline=True
            )
            assert result == clean
            assert not plan.degraded

    @pytest.mark.parametrize("threads", [1, 2, 3])
    def test_reference_and_fast_bitwise_equal(self, instance, schedule, threads):
        spec = FaultSpec(compile_fail=0.4, stall=0.3, seed=2)
        ref, ref_plan = simulate_with_faults(
            instance, schedule, spec, compile_threads=threads,
            engine="reference", record_timeline=True,
        )
        fast, fast_plan = simulate_with_faults(
            instance, schedule, spec, compile_threads=threads,
            engine="fast", record_timeline=True,
        )
        assert ref_plan == fast_plan
        assert fast.makespan == ref.makespan
        assert fast.compile_end == ref.compile_end
        assert fast.total_bubble_time == ref.total_bubble_time
        assert fast.calls_at_level == ref.calls_at_level
        assert fast.task_timings == ref.task_timings
        assert fast.call_timings == ref.call_timings

    def test_faulty_makespan_at_least_lower_bound(self, instance, schedule):
        result, _ = simulate_with_faults(
            instance, schedule, FaultSpec(compile_fail=0.5, stall=0.5)
        )
        assert result.makespan >= lower_bound(instance)

    def test_validates_intended_schedule(self, instance):
        bad = Schedule.of(("nonexistent", 0))
        with pytest.raises(ValueError):
            simulate_with_faults(instance, bad, FaultSpec(compile_fail=0.5))

    def test_rejects_unknown_engine(self, instance, schedule):
        with pytest.raises(ValueError, match="engine"):
            simulate_with_faults(instance, schedule, "", engine="warp")


class TestFaultyComparison:
    def test_null_delegates_to_clean(self, instance):
        def factory(inst):
            return EstimatedModel(inst, seed=0)

        clean = scheme_comparison(instance, model_factory=factory)
        row, summary = faulty_scheme_comparison(instance, "", model_factory=factory)
        assert row == clean
        assert all(v == 0 for k, v in summary.items() if k != "wasted_compile_time")

    def test_faulty_row_shape(self, instance):
        row, summary = faulty_scheme_comparison(
            instance,
            FaultSpec(compile_fail=0.3),
            model_factory=lambda inst: EstimatedModel(inst, seed=0),
        )
        assert set(row) == {
            "lower_bound", "iar", "default", "base_level", "optimizing_level",
        }
        assert row["lower_bound"] == 1.0
        for key in ("iar", "default", "base_level", "optimizing_level"):
            assert row[key] >= 1.0
        assert summary["compile_failures"] > 0

    def test_mispredict_only_changes_planning(self, instance):
        def factory(inst):
            return EstimatedModel(inst, seed=0)

        clean = scheme_comparison(instance, model_factory=factory)
        row, summary = faulty_scheme_comparison(
            instance, FaultSpec(mispredict=0.8), model_factory=factory
        )
        # No execution-side faults fire: nothing fails, stalls, or retries.
        assert summary["compile_failures"] == 0
        assert summary["stalls"] == 0
        # But the schedulers planned against a perturbed table, so at
        # least one scheme's normalized make-span may move; the single
        # -level baselines don't consult the cost table at all.
        assert row["base_level"] == clean["base_level"]
        assert row["optimizing_level"] == clean["optimizing_level"]
