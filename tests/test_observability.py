"""Unit tests for the observability layer (tracer, metrics, export)."""

import json
import math

import pytest

from repro.observability import (
    MetricsRegistry,
    TraceError,
    Tracer,
    TraceValidationError,
    iter_jsonl,
    to_chrome_trace,
    trace_makespan_result,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


class TestTracer:
    def test_span_records_event(self):
        tracer = Tracer()
        tracer.span("work", "t0", 1.0, 3.0, args={"x": 1})
        (event,) = tracer.events
        assert event.kind == "span"
        assert event.name == "work"
        assert event.track == "t0"
        assert event.duration == 2.0
        assert event.args == {"x": 1}

    def test_span_rejects_negative_duration(self):
        with pytest.raises(TraceError, match="end"):
            Tracer().span("bad", "t0", 5.0, 4.0)

    def test_begin_end_pairs(self):
        tracer = Tracer()
        tracer.begin("outer", "t0", 0.0)
        tracer.begin("inner", "t0", 1.0)
        tracer.end("t0", 2.0)
        tracer.end("t0", 3.0)
        spans = [e for e in tracer.events if e.kind == "span"]
        assert [(s.name, s.start, s.end) for s in spans] == [
            ("inner", 1.0, 2.0),
            ("outer", 0.0, 3.0),
        ]
        tracer.assert_closed()

    def test_end_without_begin_raises(self):
        with pytest.raises(TraceError):
            Tracer().end("t0", 1.0)

    def test_assert_closed_reports_open_spans(self):
        tracer = Tracer()
        tracer.begin("leak", "t0", 0.0)
        assert tracer.open_spans() == 1
        with pytest.raises(TraceError, match="t0"):
            tracer.assert_closed()

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("tick", "s", 2.5)
        tracer.counter("total", "c", 3.0, 7.0)
        instant, counter = tracer.events
        assert instant.kind == "instant"
        assert instant.start == instant.end == 2.5
        assert counter.kind == "counter"
        assert counter.value == 7.0

    def test_len_and_clear(self):
        tracer = Tracer()
        tracer.instant("a", "t", 0.0)
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0

    def test_scope_prefixes_tracks(self):
        tracer = Tracer()
        scope = tracer.scope("iar")
        scope.span("work", "execute", 0.0, 1.0)
        (event,) = tracer.events
        assert event.track == "iar/execute"

    def test_nested_scope(self):
        tracer = Tracer()
        inner = tracer.scope("run").scope("iar")
        inner.instant("x", "t", 0.0)
        assert tracer.events[0].track == "run-iar/t"

    def test_scope_rejects_bad_process(self):
        tracer = Tracer()
        with pytest.raises(TraceError):
            tracer.scope("")
        with pytest.raises(TraceError):
            tracer.scope("a/b")


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["hits"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3.5)
        reg.gauge("depth").set(2.0)
        assert reg.snapshot()["depth"] == 2.0

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("gain")
        for v in (1.0, 3.0, 2.0):
            h.record(v)
        snap = reg.snapshot()["gain"]
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValueError, match="n"):
            reg.gauge("n")

    def test_contains_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert "a" in reg and "b" in reg and "c" not in reg
        assert len(reg) == 2

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc(2)
        reg.histogram("gain").record(1.5)
        text = reg.render()
        assert "steps" in text
        assert "gain" in text


class TestHistogramPercentiles:
    def test_exact_below_reservoir_size(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):  # 1..100
            h.record(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_snapshot_includes_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        snap = reg.snapshot()["lat"]
        assert snap["p50"] == pytest.approx(2.5)
        assert snap["p90"] == pytest.approx(3.7)
        assert snap["p99"] == pytest.approx(3.97)

    def test_empty_histogram_has_none_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        snap = reg.snapshot()["lat"]
        assert snap["p50"] is None and snap["p99"] is None
        assert reg.histogram("lat").percentile(50) is None

    def test_percentile_range_validated(self):
        h = MetricsRegistry().histogram("lat")
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_reservoir_estimates_are_deterministic(self):
        # Beyond the reservoir the quantiles are sampled — but the RNG
        # seeds from the name, so two identical streams agree exactly.
        def run():
            h = MetricsRegistry().histogram("lat")
            for v in range(5000):
                h.record(float(v))
            return h.percentile(50), h.percentile(90), h.percentile(99)

        a, b = run(), run()
        assert a == b
        # And the estimate lands near the true quantile.
        assert a[0] == pytest.approx(2500, rel=0.15)
        assert a[2] == pytest.approx(4950, rel=0.15)

    def test_reservoir_memory_is_bounded(self):
        from repro.observability.metrics import _RESERVOIR_SIZE

        h = MetricsRegistry().histogram("lat")
        for v in range(3 * _RESERVOIR_SIZE):
            h.record(float(v))
        assert len(h._samples) == _RESERVOIR_SIZE
        assert h.count == 3 * _RESERVOIR_SIZE


class TestChromeExport:
    def _small_trace(self):
        tracer = Tracer()
        tracer.span("compile f L1", "compiler-0", 0.0, 10.0, category="compile")
        tracer.span("f", "execute", 10.0, 12.0, category="call")
        tracer.instant("sample f", "sampler", 11.0)
        tracer.counter("bubble_total", "bubbles", 10.0, 10.0)
        return tracer

    def test_roundtrip_is_valid(self):
        data = to_chrome_trace(self._small_trace())
        assert validate_chrome_trace(data) == 4
        # Serializable and stable under a JSON round trip.
        assert validate_chrome_trace(json.dumps(data)) == 4

    def test_metadata_names_tracks(self):
        data = to_chrome_trace(self._small_trace())
        names = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"compiler-0", "execute", "sampler", "bubbles"} <= names

    def test_scoped_tracks_become_processes(self):
        tracer = Tracer()
        tracer.scope("iar").span("a", "execute", 0.0, 1.0)
        tracer.scope("jikes").span("b", "execute", 0.0, 1.0)
        data = to_chrome_trace(tracer)
        procs = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs == {"iar", "jikes"}
        pids = {e["pid"] for e in data["traceEvents"]}
        assert len(pids) == 2

    def test_open_span_blocks_export(self):
        tracer = Tracer()
        tracer.begin("leak", "t", 0.0)
        with pytest.raises(TraceError):
            to_chrome_trace(tracer)

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "out.trace.json"
        count = write_chrome_trace(self._small_trace(), str(path))
        assert count == 4
        assert validate_chrome_trace(path.read_text()) == 4

    def test_write_and_iter_jsonl(self, tmp_path):
        tracer = self._small_trace()
        path = tmp_path / "out.jsonl"
        count = write_jsonl(tracer, str(path))
        assert count == 4
        lines = path.read_text().splitlines()
        assert lines == list(iter_jsonl(tracer))
        rows = [json.loads(line) for line in lines]
        assert rows[0]["kind"] == "span"
        assert rows[-1]["value"] == 10.0

    def test_validator_rejects_overlap(self):
        events = [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0.0, "dur": 5.0},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 3.0, "dur": 1.0},
        ]
        with pytest.raises(TraceValidationError, match="overlap"):
            validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_non_monotone(self):
        events = [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5.0, "s": "t"},
            {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 3.0, "s": "t"},
        ]
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_nonfinite_ts(self):
        events = [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": math.inf, "s": "t"}
        ]
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_non_list(self):
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"traceEvents": "nope"})


class TestInstrument:
    def test_trace_makespan_result_requires_timeline(self):
        from repro.core import Schedule, simulate
        from repro.core.model import FunctionProfile, OCSPInstance

        profiles = {"f": FunctionProfile("f", (1.0, 4.0), (3.0, 1.0))}
        inst = OCSPInstance(profiles, ("f", "f"), name="tiny")
        result = simulate(inst, Schedule.of(("f", 0)))
        with pytest.raises(TraceError):
            trace_makespan_result(Tracer(), result)

    def test_trace_makespan_result_emits_tracks(self):
        from repro.core import Schedule, simulate
        from repro.core.model import FunctionProfile, OCSPInstance

        profiles = {
            "f": FunctionProfile("f", (1.0, 4.0), (3.0, 1.0)),
            "g": FunctionProfile("g", (1.0,), (2.0,)),
        }
        inst = OCSPInstance(profiles, ("f", "g", "f"), name="tiny")
        sched = Schedule.of(("f", 0), ("g", 0), ("f", 1))
        result = simulate(inst, sched, record_timeline=True)
        tracer = Tracer()
        trace_makespan_result(tracer, result)
        tracks = {e.track for e in tracer.events}
        assert "compiler-0" in tracks
        assert "execute" in tracks
        # The whole trace exports cleanly.
        validate_chrome_trace(to_chrome_trace(tracer))
