"""Tests for the make-span lower bounds (Section 5.2)."""


from repro.core import (
    FunctionProfile,
    OCSPInstance,
    compile_aware_lower_bound,
    lower_bound,
    optimal_schedule,
    simulate,
)
from repro.core.iar import iar_schedule
from repro.core.single_level import base_level_schedule


class TestLowerBound:
    def test_sums_highest_level_exec_times(self, fig2_instance):
        # e at top levels: f0=1, f1=2, f2=1, f1=2, f2=1
        assert lower_bound(fig2_instance) == 7.0

    def test_empty_instance(self):
        assert lower_bound(OCSPInstance({}, ())) == 0.0

    def test_single_level_functions_count_their_only_level(self):
        inst = OCSPInstance(
            {"a": FunctionProfile("a", (1.0,), (5.0,))}, ("a", "a")
        )
        assert lower_bound(inst) == 10.0

    def test_below_true_optimum(self, fig2_instance):
        opt = optimal_schedule(fig2_instance)
        assert lower_bound(fig2_instance) <= opt.makespan

    def test_below_true_optimum_synthetic(self, tiny_synthetic):
        opt = optimal_schedule(tiny_synthetic)
        assert lower_bound(tiny_synthetic) <= opt.makespan

    def test_below_every_scheduler(self, small_synthetic):
        lb = lower_bound(small_synthetic)
        for sched in (
            iar_schedule(small_synthetic),
            base_level_schedule(small_synthetic),
        ):
            assert simulate(small_synthetic, sched, validate=False).makespan >= lb


class TestCompileAwareLowerBound:
    def test_dominates_plain_bound(self, fig2_instance):
        assert compile_aware_lower_bound(fig2_instance) >= lower_bound(fig2_instance)

    def test_adds_first_function_base_compile(self, fig2_instance):
        assert compile_aware_lower_bound(fig2_instance) == 7.0 + 1.0

    def test_still_below_optimum(self, fig2_instance):
        opt = optimal_schedule(fig2_instance)
        assert compile_aware_lower_bound(fig2_instance) <= opt.makespan

    def test_still_below_optimum_synthetic(self, tiny_synthetic):
        opt = optimal_schedule(tiny_synthetic)
        assert compile_aware_lower_bound(tiny_synthetic) <= opt.makespan

    def test_empty_instance(self):
        assert compile_aware_lower_bound(OCSPInstance({}, ())) == 0.0


class TestWarmupAwareLowerBound:
    def test_dominates_exec_bound(self, fig2_instance, small_synthetic):
        from repro.core import warmup_aware_lower_bound

        for inst in (fig2_instance, small_synthetic):
            assert warmup_aware_lower_bound(inst) >= lower_bound(inst)

    def test_dominates_compile_aware_bound(self, fig2_instance):
        from repro.core import warmup_aware_lower_bound

        assert warmup_aware_lower_bound(fig2_instance) >= compile_aware_lower_bound(
            fig2_instance
        )

    def test_below_true_optimum(self, fig2_instance, tiny_synthetic):
        from repro.core import warmup_aware_lower_bound

        for inst in (fig2_instance, tiny_synthetic):
            opt = optimal_schedule(inst)
            assert warmup_aware_lower_bound(inst) <= opt.makespan + 1e-9

    def test_hand_computed(self):
        from repro.core import FunctionProfile, OCSPInstance, warmup_aware_lower_bound

        profiles = {
            "a": FunctionProfile("a", (5.0,), (1.0,)),
            "b": FunctionProfile("b", (5.0,), (1.0,)),
        }
        inst = OCSPInstance(profiles, ("a", "b"), name="wb")
        # k=0: 5 + 2 = 7; k=1: 10 + 1 = 11.
        assert warmup_aware_lower_bound(inst) == 11.0

    def test_empty(self):
        from repro.core import OCSPInstance, warmup_aware_lower_bound

        assert warmup_aware_lower_bound(OCSPInstance({}, ())) == 0.0

    def test_tightens_the_bracket_on_synthetic(self, small_synthetic):
        """The whole point: the bracket [bound, IAR] narrows."""
        from repro.core import iar_schedule, simulate, warmup_aware_lower_bound

        exec_lb = lower_bound(small_synthetic)
        warm_lb = warmup_aware_lower_bound(small_synthetic)
        iar_span = simulate(
            small_synthetic, iar_schedule(small_synthetic), validate=False
        ).makespan
        assert exec_lb <= warm_lb <= iar_span + 1e-9
