"""Tests for metrics, reporting, and the experiment drivers."""

import pytest

from repro.analysis import metrics, reporting
from repro.analysis.experiments import (
    astar_scaling,
    average_row,
    figure5,
    figure6,
    figure7,
    figure8,
    scheme_comparison,
    table1,
    table2,
)
from repro.workloads import WorkloadSpec, generate


@pytest.fixture(scope="module")
def tiny_suite():
    """Two fast synthetic benchmarks for driver smoke tests."""
    suite = {}
    for i, name in enumerate(("alpha", "beta")):
        spec = WorkloadSpec(
            name=name,
            num_functions=30,
            num_calls=3000,
            num_levels=4,
            base_compile_us=25.0,
            mean_exec_us=2.0,
        )
        suite[name] = generate(spec, seed=100 + i)
    return suite


class TestMetrics:
    def test_normalized(self):
        assert metrics.normalized(15.0, 10.0) == 1.5

    def test_normalized_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            metrics.normalized(15.0, 0.0)

    def test_gap(self):
        assert metrics.gap(17.0, 10.0) == pytest.approx(0.7)

    def test_speedup(self):
        assert metrics.speedup(20.0, 10.0) == 2.0
        with pytest.raises(ValueError):
            metrics.speedup(20.0, 0.0)

    def test_means(self):
        assert metrics.arithmetic_mean([1.0, 3.0]) == 2.0
        assert metrics.geometric_mean([1.0, 4.0]) == 2.0
        with pytest.raises(ValueError):
            metrics.arithmetic_mean([])
        with pytest.raises(ValueError):
            metrics.geometric_mean([-1.0])

    def test_summarize(self):
        summary = metrics.summarize_normalized({"a": 1.0, "b": 2.0})
        assert summary["mean"] == 1.5
        assert summary["min"] == 1.0
        assert summary["max"] == 2.0


class TestReporting:
    ROWS = [
        {"benchmark": "x", "iar": 1.1, "default": 2.0},
        {"benchmark": "y", "iar": 1.2, "default": None},
    ]

    def test_format_table_alignment(self):
        text = reporting.format_table(self.ROWS, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "benchmark" in lines[1]
        assert "1.100" in text
        assert "-" in lines[-1]  # None renders as '-'

    def test_format_table_column_selection(self):
        text = reporting.format_table(self.ROWS, columns=["iar"])
        assert "default" not in text

    def test_format_table_empty(self):
        assert "(no rows)" in reporting.format_table([])

    def test_format_figure(self):
        text = reporting.format_figure(self.ROWS, series=["iar"])
        assert text.splitlines()[0].startswith("benchmark")

    def test_render_rows(self):
        text = reporting.render_rows(self.ROWS)
        assert "benchmark=x" in text
        assert "iar=1.100" in text


class TestDrivers:
    def test_table1(self):
        rows = table1(scale=0.002)
        assert len(rows) == 9

    def test_scheme_comparison_keys(self, tiny_suite):
        row = scheme_comparison(tiny_suite["alpha"])
        assert set(row) == {
            "lower_bound", "iar", "default", "base_level", "optimizing_level",
        }
        assert row["lower_bound"] == 1.0
        assert row["iar"] >= 1.0

    def test_figure5_and_6(self, tiny_suite):
        for driver in (figure5, figure6):
            rows = driver(tiny_suite)
            assert [r["benchmark"] for r in rows] == ["alpha", "beta"]
            for row in rows:
                assert row["iar"] >= 1.0
                assert row["default"] >= 1.0

    def test_figure7_speedups(self, tiny_suite):
        rows = figure7(tiny_suite, core_counts=(1, 2, 4))
        for row in rows:
            assert row["cores_1"] == pytest.approx(1.0)
            assert row["cores_2"] >= 1.0 - 1e-9
            assert row["cores_4"] >= row["cores_2"] - 1e-9

    def test_figure8(self, tiny_suite):
        rows = figure8(tiny_suite)
        for row in rows:
            assert row["iar"] >= 1.0
            assert row["default"] >= 1.0

    def test_table2(self, tiny_suite):
        rows = table2(tiny_suite)
        for row in rows:
            assert row["iar_time_s"] > 0
            assert row["program_time_s"] > 0

    def test_astar_scaling_smoke(self):
        rows = astar_scaling(
            function_counts=(2, 3), calls_per_instance=12, max_frontier=50_000
        )
        assert [r["functions"] for r in rows] == [2, 3]
        assert all(r["status"] == "optimal" for r in rows)

    def test_astar_scaling_memory_exhaustion(self):
        rows = astar_scaling(
            function_counts=(7,), calls_per_instance=40, max_frontier=500
        )
        assert rows[0]["status"] == "out-of-memory"

    def test_average_row(self):
        rows = [{"benchmark": "a", "x": 1.0}, {"benchmark": "b", "x": 3.0}]
        avg = average_row(rows, ["x"])
        assert avg["benchmark"] == "average"
        assert avg["x"] == 2.0

    def test_average_row_geometric(self):
        rows = [{"benchmark": "a", "x": 1.0}, {"benchmark": "b", "x": 4.0}]
        avg = average_row(rows, ["x"], mean="geo")
        assert avg["x"] == pytest.approx(2.0)
        # The arithmetic mean of the same ratios overweights the slow
        # benchmark — this is the bug the geo option fixes.
        assert average_row(rows, ["x"])["x"] == pytest.approx(2.5)

    def test_average_row_rejects_unknown_mean(self):
        rows = [{"benchmark": "a", "x": 1.0}]
        with pytest.raises(ValueError, match="mean"):
            average_row(rows, ["x"], mean="median")

    def test_average_row_skips_missing_values(self):
        rows = [
            {"benchmark": "a", "x": 2.0},
            {"benchmark": "b", "x": None},
            {"benchmark": "c", "x": 8.0},
        ]
        assert average_row(rows, ["x"], mean="geo")["x"] == pytest.approx(4.0)


class TestFormatTimeline:
    def test_renders_fig1_schedule(self, fig1_instance=None):
        from repro.analysis import format_timeline
        from repro.core import FunctionProfile, OCSPInstance, Schedule, simulate

        profiles = {
            "f0": FunctionProfile("f0", (1.0,), (1.0,)),
            "f1": FunctionProfile("f1", (1.0, 4.0), (3.0, 2.0)),
        }
        inst = OCSPInstance(profiles, ("f0", "f1"), name="t")
        sched = Schedule.of(("f0", 0), ("f1", 0))
        result = simulate(inst, sched, record_timeline=True)
        text = format_timeline(result)
        assert "compile[0]" in text
        assert "execute" in text
        assert "make-span:" in text
        assert "bubble" in text  # f0 waits for its compile

    def test_requires_timeline(self):
        from repro.analysis import format_timeline
        from repro.core import FunctionProfile, OCSPInstance, Schedule, simulate

        profiles = {"f0": FunctionProfile("f0", (1.0,), (1.0,))}
        inst = OCSPInstance(profiles, ("f0",), name="t")
        result = simulate(inst, Schedule.of(("f0", 0)))
        with pytest.raises(ValueError, match="record_timeline"):
            format_timeline(result)


class TestGrandComparison:
    def test_keys_and_sanity(self, tiny_suite):
        from repro.analysis.experiments import grand_comparison

        row = grand_comparison(next(iter(tiny_suite.values())))
        expected = {
            "lower_bound", "iar", "jikes", "v8", "tiered", "ondemand",
            "hotness_first", "greedy_budget", "base_level", "optimizing_level",
        }
        assert set(row) == expected
        assert row["lower_bound"] == 1.0
        assert all(v >= 1.0 - 1e-9 for v in row.values())
