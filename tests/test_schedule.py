"""Tests for compilation schedules and their legality rules."""

import pytest

from repro.core import CompileTask, FunctionProfile, OCSPInstance, Schedule, ScheduleError


@pytest.fixture()
def instance():
    profiles = {
        "a": FunctionProfile("a", (1.0, 2.0), (4.0, 2.0)),
        "b": FunctionProfile("b", (1.0,), (1.0,)),
    }
    return OCSPInstance(profiles, ("a", "b", "a"))


class TestConstruction:
    def test_of_builder(self):
        sched = Schedule.of(("a", 0), ("b", 1))
        assert len(sched) == 2
        assert sched[0] == CompileTask("a", 0)
        assert sched[1].level == 1

    def test_empty(self):
        assert len(Schedule.empty()) == 0

    def test_append_returns_new(self):
        s0 = Schedule.empty()
        s1 = s0.append(CompileTask("a", 0))
        assert len(s0) == 0
        assert len(s1) == 1

    def test_extend(self):
        sched = Schedule.empty().extend([CompileTask("a", 0), CompileTask("b", 0)])
        assert [t.function for t in sched] == ["a", "b"]

    def test_replace_at(self):
        sched = Schedule.of(("a", 0), ("b", 0))
        new = sched.replace_at(0, CompileTask("a", 1))
        assert new[0].level == 1
        assert sched[0].level == 0

    def test_replace_at_out_of_range(self):
        with pytest.raises(IndexError):
            Schedule.of(("a", 0)).replace_at(3, CompileTask("a", 1))

    def test_delete_at(self):
        sched = Schedule.of(("a", 0), ("b", 0))
        assert [t.function for t in sched.delete_at(0)] == ["b"]

    def test_delete_at_out_of_range(self):
        with pytest.raises(IndexError):
            Schedule.of(("a", 0)).delete_at(1)


class TestViews:
    def test_functions_in_first_task_order(self):
        sched = Schedule.of(("b", 0), ("a", 0), ("b", 1))
        assert sched.functions() == ["b", "a"]

    def test_tasks_for(self):
        sched = Schedule.of(("b", 0), ("a", 0), ("b", 1))
        assert [t.level for t in sched.tasks_for("b")] == [0, 1]

    def test_index_of_first(self):
        sched = Schedule.of(("b", 0), ("a", 0))
        assert sched.index_of_first("a") == 1
        assert sched.index_of_first("zzz") is None

    def test_highest_level_of(self):
        sched = Schedule.of(("b", 0), ("b", 1))
        assert sched.highest_level_of("b") == 1
        assert sched.highest_level_of("a") is None

    def test_str(self):
        assert str(Schedule.of(("a", 0))) == "(C0(a))"


class TestValidation:
    def test_valid_schedule(self, instance):
        Schedule.of(("a", 0), ("b", 0), ("a", 1)).validate(instance)

    def test_missing_function_rejected(self, instance):
        with pytest.raises(ScheduleError, match="never compiled"):
            Schedule.of(("a", 0)).validate(instance)

    def test_unknown_function_rejected(self, instance):
        with pytest.raises(ScheduleError, match="unknown function"):
            Schedule.of(("zzz", 0), ("a", 0), ("b", 0)).validate(instance)

    def test_level_out_of_range_rejected(self, instance):
        with pytest.raises(ScheduleError, match="levels"):
            Schedule.of(("b", 1), ("a", 0)).validate(instance)

    def test_non_increasing_recompilation_rejected(self, instance):
        with pytest.raises(ScheduleError, match="strictly increase"):
            Schedule.of(("a", 1), ("a", 0), ("b", 0)).validate(instance)

    def test_duplicate_same_level_rejected(self, instance):
        with pytest.raises(ScheduleError, match="strictly increase"):
            Schedule.of(("a", 0), ("a", 0), ("b", 0)).validate(instance)

    def test_is_valid_for(self, instance):
        assert Schedule.of(("a", 0), ("b", 0)).is_valid_for(instance)
        assert not Schedule.of(("a", 0)).is_valid_for(instance)

    def test_total_compile_time(self, instance):
        sched = Schedule.of(("a", 0), ("b", 0), ("a", 1))
        assert sched.total_compile_time(instance) == 1.0 + 1.0 + 2.0
