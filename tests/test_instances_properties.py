"""Property-based and fuzz tests for the instance format.

Round-trip: any valid bundle written to disk reads back as the exact
same instance, with identical simulate() counters on every engine.
Fuzz: corrupt manifests and CSVs never leak raw exceptions — every
failure is an :class:`InstanceError` with the ``instance:`` prefix
(mirroring ``tests/test_traces_hardening.py``).
"""

import json
import random
from typing import Dict

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DueDateTable, FunctionProfile, OCSPInstance, Schedule, simulate
from repro.core.engine import ENGINES
from repro.instances import InstanceBundle, InstanceError, read_bundle, write_bundle

times = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def bundles(draw, max_functions=4, max_levels=3, max_calls=10):
    n_funcs = draw(st.integers(min_value=1, max_value=max_functions))
    profiles: Dict[str, FunctionProfile] = {}
    for i in range(n_funcs):
        n_levels = draw(st.integers(min_value=1, max_value=max_levels))
        compile_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels))
        )
        exec_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels)),
            reverse=True,
        )
        name = f"f{i}"
        profiles[name] = FunctionProfile(
            name, tuple(compile_times), tuple(exec_times)
        )
    names = sorted(profiles)
    calls = draw(
        st.lists(st.sampled_from(names), min_size=1, max_size=max_calls)
    )
    due = None
    if draw(st.booleans()):
        dued = draw(
            st.lists(st.sampled_from(names), min_size=1, unique=True)
        )
        due = DueDateTable(
            {
                f: (
                    draw(st.floats(min_value=0.0, max_value=500.0)),
                    draw(st.floats(min_value=0.0, max_value=9.0)),
                )
                for f in dued
            }
        )
    return InstanceBundle(
        instance=OCSPInstance(profiles, tuple(calls), name="prop"),
        due_dates=due,
        source="synthetic",
        compile_threads=draw(st.integers(min_value=1, max_value=3)),
    )


def base_schedule(instance):
    return Schedule.of(
        *((f, 0) for f in sorted(instance.called_functions))
    )


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(bundle=bundles())
    def test_read_back_is_exact(self, tmp_path_factory, bundle):
        root = tmp_path_factory.mktemp("rt")
        write_bundle(bundle, root / "b")
        back = read_bundle(root / "b")
        assert back.instance == bundle.instance
        assert back.due_dates == bundle.due_dates
        assert back.compile_threads == bundle.compile_threads
        assert back.content_fingerprint() == bundle.content_fingerprint()

    @settings(max_examples=30, deadline=None)
    @given(bundle=bundles())
    def test_double_export_is_byte_identical(self, tmp_path_factory, bundle):
        root = tmp_path_factory.mktemp("dbl")
        a = write_bundle(bundle, root / "a")
        b = write_bundle(read_bundle(a), root / "b")
        for path in sorted(a.iterdir()):
            assert path.read_bytes() == (b / path.name).read_bytes()

    @settings(max_examples=25, deadline=None)
    @given(bundle=bundles())
    def test_simulate_counters_identical_across_engines(
        self, tmp_path_factory, bundle
    ):
        root = tmp_path_factory.mktemp("sim")
        write_bundle(bundle, root / "b")
        back = read_bundle(root / "b")
        schedule = base_schedule(bundle.instance)
        results = {}
        for engine in ENGINES:
            a = simulate(
                bundle.instance,
                schedule,
                compile_threads=bundle.compile_threads,
                engine=engine,
            )
            b = simulate(
                back.instance,
                schedule,
                compile_threads=back.compile_threads,
                engine=engine,
            )
            assert a.makespan == b.makespan
            assert a.calls_at_level == b.calls_at_level
            assert a.total_exec_time == b.total_exec_time
            results[engine] = a.makespan
        assert len(set(results.values())) == 1


@pytest.fixture(scope="module")
def valid_root(tmp_path_factory):
    profiles = {
        "f0": FunctionProfile("f0", (1.0, 4.0), (3.0, 1.0)),
        "f1": FunctionProfile("f1", (2.0,), (5.0,)),
    }
    instance = OCSPInstance(profiles, ("f0", "f1", "f0"), name="fuzz")
    bundle = InstanceBundle(
        instance=instance,
        due_dates=DueDateTable({"f0": (9.0, 2.0)}),
    )
    root = tmp_path_factory.mktemp("fuzz")
    return write_bundle(bundle, root / "b")


def copy_bundle(valid_root, tmp_path):
    dst = tmp_path / "b"
    dst.mkdir()
    for path in valid_root.iterdir():
        (dst / path.name).write_bytes(path.read_bytes())
    return dst


class TestManifestFuzz:
    @pytest.mark.parametrize(
        "text",
        ["", "{not json", "[1, 2]", '"str"', "null", "\x00\x01"],
    )
    def test_bad_manifest_documents(self, valid_root, tmp_path, text):
        root = copy_bundle(valid_root, tmp_path)
        (root / "manifest.json").write_text(text, encoding="utf-8")
        with pytest.raises(InstanceError, match="^instance:"):
            read_bundle(root)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("format"),
            lambda d: d.update(format=1),
            lambda d: d.pop("format_version"),
            lambda d: d.update(format_version="1"),
            lambda d: d.update(format_version=None),
            lambda d: d.pop("name"),
            lambda d: d.update(name=""),
            lambda d: d.update(name=7),
            lambda d: d.update(source=""),
            lambda d: d.pop("files"),
            lambda d: d.update(files=[]),
            lambda d: d["files"].pop("costs"),
            lambda d: d["files"].update(costs=""),
            lambda d: d["files"].update(costs=3),
            lambda d: d["files"].update(costs="/etc/passwd"),
            lambda d: d["files"].update(costs="sub/dir.csv"),
            lambda d: d["counts"].update(functions=99),
            lambda d: d["counts"].update(levels=0),
            lambda d: d.update(content_fingerprint="deadbeef"),
        ],
    )
    def test_mutated_manifests(self, valid_root, tmp_path, mutate):
        root = copy_bundle(valid_root, tmp_path)
        doc = json.loads((root / "manifest.json").read_text(encoding="utf-8"))
        mutate(doc)
        (root / "manifest.json").write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(InstanceError, match="^instance:"):
            read_bundle(root)

    def test_fuzz_random_manifest_bytes(self, valid_root, tmp_path):
        rng = random.Random(0)
        root = copy_bundle(valid_root, tmp_path)
        for _ in range(150):
            text = "".join(
                chr(rng.randrange(32, 127))
                for _ in range(rng.randrange(0, 60))
            )
            (root / "manifest.json").write_text(text, encoding="utf-8")
            with pytest.raises(InstanceError, match="^instance:"):
                read_bundle(root)


class TestCsvFuzz:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "wrong,header\n",
            "name,c0,e0\n",  # no data rows
            "name,c0,e0\nf0\n",  # short row
            "name,c0,e0\nf0,1.0,2.0,3.0\n",  # long row
            "name,c0,e0\n,1.0,2.0\n",  # empty name
            "name,c0,e0\nf0,1.0,2.0\nf0,1.0,2.0\n",  # duplicate
            "name,c0,e0\nf0,fast,2.0\n",  # non-numeric
            "name,c0,e0\nf0,nan,2.0\n",
            "name,c0,e0\nf0,inf,2.0\n",
            "name,c0,e0\nf0,-1.0,2.0\n",  # negative cost
            "name,c0,c1,e0,e1\nf0,,1.0,2.0,\n",  # ragged prefix
            "name,c0,c1,e0,e1\nf0,1.0,,2.0,3.0\n",  # mismatched c/e
            "name,c0,c1,e0,e1\nf0,,,,\n",  # no levels at all
        ],
    )
    def test_bad_costs(self, valid_root, tmp_path, text):
        root = copy_bundle(valid_root, tmp_path)
        (root / "costs.csv").write_text(text, encoding="utf-8")
        with pytest.raises(InstanceError, match="^instance:"):
            read_bundle(root)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "wrong\nf0\n",
            "call\nf0,extra\n",
            "call\nghost\n",  # unknown function
        ],
    )
    def test_bad_calls(self, valid_root, tmp_path, text):
        root = copy_bundle(valid_root, tmp_path)
        (root / "calls.csv").write_text(text, encoding="utf-8")
        with pytest.raises(InstanceError, match="^instance:"):
            read_bundle(root)

    def test_fuzz_random_csv_bytes(self, valid_root, tmp_path):
        rng = random.Random(1)
        root = copy_bundle(valid_root, tmp_path)
        original = (root / "costs.csv").read_text(encoding="utf-8")
        hits = 0
        for _ in range(150):
            text = "".join(
                chr(rng.randrange(32, 127))
                for _ in range(rng.randrange(0, 80))
            )
            (root / "costs.csv").write_text(text, encoding="utf-8")
            try:
                read_bundle(root)
            except InstanceError:
                hits += 1
            finally:
                pass
        assert hits == 150  # random junk never parses as valid costs
        (root / "costs.csv").write_text(original, encoding="utf-8")
        assert read_bundle(root)


class TestDueDatesFuzz:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "{not json",
            "[1]",
            "{}",
            '{"entries": []}',
            '{"entries": {"f0": 1.0}}',  # entry must be an object
            '{"entries": {"f0": {"weight": 1.0}}}',  # missing due
            '{"entries": {"f0": {"due": true, "weight": 1.0}}}',
            '{"entries": {"f0": {"due": -1.0, "weight": 1.0}}}',
            '{"entries": {"f0": {"due": 1.0, "weight": -2.0}}}',
            '{"entries": {"ghost": {"due": 1.0, "weight": 1.0}}}',
        ],
    )
    def test_bad_due_dates(self, valid_root, tmp_path, text):
        root = copy_bundle(valid_root, tmp_path)
        (root / "due_dates.json").write_text(text, encoding="utf-8")
        with pytest.raises(InstanceError, match="^instance:"):
            read_bundle(root)
