"""Fault injection through the reactive runtime (Jikes/V8 schemes)."""

import pytest

from repro.faults import FaultInjector, FaultSpec
from repro.observability import MetricsRegistry
from repro.vm.costbenefit import EstimatedModel
from repro.vm.jikes import run_jikes
from repro.vm.v8 import run_v8
from repro.workloads import WorkloadSpec, generate


@pytest.fixture(scope="module")
def instance():
    spec = WorkloadSpec(
        name="faulty", num_functions=8, num_calls=160, num_levels=3
    )
    return generate(spec, seed=11)


def assert_runs_equal(a, b) -> None:
    assert a.schedule == b.schedule
    assert a.enqueue_times == b.enqueue_times
    assert a.makespan == b.makespan
    assert a.total_bubble_time == b.total_bubble_time
    assert a.total_exec_time == b.total_exec_time
    assert a.calls_at_level == b.calls_at_level
    assert a.samples_taken == b.samples_taken


class TestNullInjector:
    """Zero-rate injectors must leave the clean path bitwise untouched."""

    def test_jikes_bitwise_clean(self, instance):
        clean = run_jikes(instance, model=EstimatedModel(instance, seed=0))
        nulled = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec()),
        )
        assert_runs_equal(clean, nulled)
        assert nulled.fault_summary is None

    def test_v8_bitwise_clean(self, instance):
        projected = instance.restricted_to_levels(
            {fname: [0, 1] for fname in instance.profiles}
        )
        clean = run_v8(projected)
        nulled = run_v8(projected, faults=FaultInjector(""))
        assert_runs_equal(clean, nulled)
        assert nulled.fault_summary is None


class TestFaultyRuns:
    def test_deterministic(self, instance):
        runs = [
            run_jikes(
                instance,
                model=EstimatedModel(instance, seed=0),
                faults=FaultInjector(FaultSpec(compile_fail=0.3, stall=0.2)),
            )
            for _ in range(2)
        ]
        assert_runs_equal(runs[0], runs[1])
        assert runs[0].fault_summary == runs[1].fault_summary

    def test_summary_reports_fired_faults(self, instance):
        result = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(compile_fail=0.6)),
        )
        summary = result.fault_summary
        assert summary is not None
        assert summary["compile_failures"] > 0
        # Failed first-encounter chains must still install *something*:
        # every retry/forced install traces back to a failure.
        assert summary["compile_failures"] >= summary["retries"]
        assert summary["wasted_compile_time"] > 0.0

    def test_every_called_function_still_installs(self, instance):
        # Graceful degradation: compile failures never leave a called
        # function uncompiled (level 0 is the guaranteed fail-safe).
        result = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(compile_fail=0.9, retries=1)),
        )
        installed = {task.function for task in result.schedule}
        assert installed == set(instance.called_functions)

    def test_no_deadlock_without_retries(self, instance):
        result = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(compile_fail=0.95, retries=0)),
        )
        assert result.makespan > 0.0
        assert result.fault_summary["forced_installs"] > 0

    def test_stalls_slow_the_run(self, instance):
        clean = run_jikes(instance, model=EstimatedModel(instance, seed=0))
        stalled = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(stall=1.0, stall_factor=8.0)),
        )
        assert stalled.fault_summary["stalls"] > 0
        assert stalled.makespan >= clean.makespan

    def test_dropped_ticks_reduce_samples(self, instance):
        clean = run_jikes(instance, model=EstimatedModel(instance, seed=0))
        lossy = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(tick_drop=1.0)),
        )
        assert lossy.samples_taken == 0
        assert lossy.fault_summary["ticks_dropped"] > 0
        assert clean.samples_taken > 0

    def test_duplicated_ticks_increase_samples(self, instance):
        clean = run_jikes(instance, model=EstimatedModel(instance, seed=0))
        doubled = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(tick_dup=1.0)),
        )
        assert doubled.samples_taken == 2 * clean.samples_taken
        assert doubled.fault_summary["ticks_duplicated"] == clean.samples_taken

    def test_backoff_delays_retries(self, instance):
        prompt = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(compile_fail=0.5, seed=3)),
        )
        delayed = run_jikes(
            instance,
            model=EstimatedModel(instance, seed=0),
            faults=FaultInjector(FaultSpec(compile_fail=0.5, seed=3, backoff=5.0)),
        )
        # Same seed → same fault verdicts; backoff only moves retries later.
        assert (
            delayed.fault_summary["compile_failures"]
            == prompt.fault_summary["compile_failures"]
        )
        assert delayed.makespan >= prompt.makespan

    def test_v8_faulty_run(self, instance):
        projected = instance.restricted_to_levels(
            {fname: [0, 1] for fname in instance.profiles}
        )
        result = run_v8(
            projected, faults=FaultInjector(FaultSpec(compile_fail=0.5))
        )
        assert result.fault_summary["compile_failures"] > 0
        installed = {task.function for task in result.schedule}
        assert installed == set(projected.called_functions)


class TestMetricsMirror:
    def test_counters_match_tally(self, instance):
        metrics = MetricsRegistry()
        injector = FaultInjector(
            FaultSpec(compile_fail=0.4, stall=0.3), metrics=metrics
        )
        run_jikes(
            instance, model=EstimatedModel(instance, seed=0), faults=injector
        )
        for key, count in injector.tally.items():
            if count:
                assert metrics.counter(f"faults.{key}").value == count
