"""Tests for the IAR algorithm (Section 5.1, Figure 3)."""

import pytest

from repro.core import (
    CompileTask,
    FunctionProfile,
    OCSPInstance,
    iar,
    iar_schedule,
    lower_bound,
    simulate,
)
from repro.core.iar import DEFAULT_K, IARParams


@pytest.fixture()
def categorize_instance():
    """Crafted so each category is exercised:

    * ``a`` — hot from the start, cheap high compile → **R**;
    * ``b`` — single level → **O**;
    * ``y``, ``z`` — hot but first called late, expensive high compiles
      (20 and 50) → **A**, appended cheap-first;
    * ``w`` — high level not beneficial (Formula 1) → **O**.
    """
    profiles = {
        "a": FunctionProfile("a", (1.0, 3.0), (2.0, 1.0)),
        "b": FunctionProfile("b", (10.0,), (5.0,)),
        "y": FunctionProfile("y", (1.0, 20.0), (2.0, 1.0)),
        "z": FunctionProfile("z", (1.0, 50.0), (2.0, 1.0)),
        "w": FunctionProfile("w", (1.0, 50.0), (2.0, 1.9)),
    }
    calls = (
        ("a",) * 6
        + ("b",)
        + ("a",) * 5
        + ("w",) * 3
        + ("z",) * 60
        + ("y",) * 60
    )
    return OCSPInstance(profiles, calls, name="categorize")


class TestCategorization:
    def test_categories(self, categorize_instance):
        result = iar(categorize_instance)
        assert result.categories["a"] == "R"
        assert result.categories["b"] == "O"
        assert result.categories["w"] == "O"
        assert result.categories["y"] == "A"
        assert result.categories["z"] == "A"

    def test_replace_happens_in_initial_segment(self, categorize_instance):
        result = iar(categorize_instance, IARParams(refine_slack=False, fill_gap=False))
        # Initial segment = one task per function in first-call order.
        m = categorize_instance.num_functions
        init = result.schedule.tasks[:m]
        assert init[0] == CompileTask("a", 1)  # replaced with high
        assert init[1] == CompileTask("b", 0)

    def test_appends_sorted_by_compile_time(self, categorize_instance):
        result = iar(categorize_instance, IARParams(refine_slack=False, fill_gap=False))
        m = categorize_instance.num_functions
        appended = result.schedule.tasks[m:]
        assert [t.function for t in appended] == ["y", "z"]  # ch 20 < 50

    def test_schedule_valid(self, categorize_instance):
        result = iar(categorize_instance)
        result.schedule.validate(categorize_instance)


class TestPaperExample:
    def test_fig2_reaches_optimal(self, fig2_instance):
        sched = iar_schedule(fig2_instance)
        assert simulate(fig2_instance, sched).makespan == 12.0

    def test_fig2_classifies_f1_unbeneficial(self, fig2_instance):
        result = iar(fig2_instance)
        # f1: ch + n*eh = 4+4 = 8 > cl + n*el = 1+6 = 7 → O (Formula 1)
        assert result.categories["f1"] == "O"
        # f2 (tie in Formula 1, n1 = 0) → A
        assert result.categories["f2"] == "A"


class TestSlackFilling:
    def test_slack_upgrade_deletes_appended_task(self):
        # 'late' is first-called long after its cheap initial compile
        # finishes: huge slack, so step 3 upgrades it in place.
        profiles = {
            "first": FunctionProfile("first", (1.0,), (50.0,)),
            "late": FunctionProfile("late", (1.0, 10.0), (5.0, 1.0)),
        }
        calls = ("first",) + ("late",) * 30
        inst = OCSPInstance(profiles, calls, name="slack")
        result = iar(inst)
        assert "late" in result.slack_upgrades
        # Exactly one compile of 'late', at the high level, in the
        # initial segment.
        tasks = result.schedule.tasks_for("late")
        assert tasks == [CompileTask("late", 1)]

    def test_slack_refinement_never_hurts(self, small_synthetic):
        with_refine = iar(small_synthetic, IARParams(refine_slack=True))
        without = iar(small_synthetic, IARParams(refine_slack=False))
        span_with = simulate(small_synthetic, with_refine.schedule, validate=False)
        span_without = simulate(small_synthetic, without.schedule, validate=False)
        assert span_with.makespan <= span_without.makespan + 1e-9

    def test_no_upgrade_when_no_slack(self):
        # Execution is ready immediately; upgrading would add bubbles.
        profiles = {
            "hot": FunctionProfile("hot", (5.0, 50.0), (1.0, 0.5)),
        }
        inst = OCSPInstance(profiles, ("hot",) * 40, name="noslack")
        result = iar(inst)
        assert result.slack_upgrades == ()


class TestGapFilling:
    def test_gap_append_when_tail_is_long(self):
        # 'tail' runs a long time after all compiles finish; its high
        # compile fits in the ending gap even though Formula 1 already
        # rejected it as not beneficial overall... so use a function
        # that is beneficial but was classified A with a compile too
        # large to finish before its calls — no: step 4 targets
        # functions still at the low level.  'cheap_tail' has a mildly
        # useful high level (Formula 1 rejects: O) but plenty of calls
        # after compile end.
        profiles = {
            "main": FunctionProfile("main", (1.0,), (10.0,)),
            "cheap_tail": FunctionProfile("cheap_tail", (1.0, 5.0), (2.0, 1.95)),
        }
        calls = ("main",) + ("cheap_tail",) * 40
        inst = OCSPInstance(profiles, calls, name="gap")
        # With slack refinement on, step 3 upgrades in place instead
        # (also correct); disable it to exercise the gap-fill path.
        result = iar(inst, IARParams(refine_slack=False))
        assert result.categories["cheap_tail"] == "O"
        assert "cheap_tail" in result.gap_appends
        # The appended high compile sits at the end of the schedule.
        assert result.schedule.tasks[-1] == CompileTask("cheap_tail", 1)

    def test_slack_refinement_upgrades_in_place_instead(self):
        profiles = {
            "main": FunctionProfile("main", (1.0,), (10.0,)),
            "cheap_tail": FunctionProfile("cheap_tail", (1.0, 5.0), (2.0, 1.95)),
        }
        calls = ("main",) + ("cheap_tail",) * 40
        inst = OCSPInstance(profiles, calls, name="gap2")
        result = iar(inst)
        assert result.slack_upgrades == ("cheap_tail",)
        assert result.schedule.tasks_for("cheap_tail") == [CompileTask("cheap_tail", 1)]

    def test_gap_fill_never_hurts(self, small_synthetic):
        with_fill = iar(small_synthetic, IARParams(fill_gap=True))
        without = iar(small_synthetic, IARParams(fill_gap=False))
        span_with = simulate(small_synthetic, with_fill.schedule, validate=False)
        span_without = simulate(small_synthetic, without.schedule, validate=False)
        assert span_with.makespan <= span_without.makespan + 1e-9


class TestParameters:
    def test_k_values_in_paper_range_agree(self, small_synthetic):
        spans = []
        for k in (3, 5, 10):
            sched = iar_schedule(small_synthetic, k=k)
            spans.append(simulate(small_synthetic, sched, validate=False).makespan)
        spread = (max(spans) - min(spans)) / min(spans)
        assert spread < 0.10  # paper: K in [3,10] gives similar results

    def test_default_k(self):
        assert DEFAULT_K == 5.0

    def test_high_levels_override(self, fig2_instance):
        result = iar(fig2_instance, high_levels={"f1": 1, "f2": 1})
        assert result.high_level == {"f1": 1, "f2": 1}

    def test_high_levels_override_none_means_single_level(self, fig2_instance):
        result = iar(fig2_instance, high_levels={"f1": None, "f2": None})
        assert result.categories["f1"] == "O"
        assert result.categories["f2"] == "O"

    def test_high_levels_out_of_range(self, fig2_instance):
        with pytest.raises(ValueError, match="out of range"):
            iar(fig2_instance, high_levels={"f1": 7})

    def test_determinism(self, small_synthetic):
        a = iar(small_synthetic).schedule
        b = iar(small_synthetic).schedule
        assert a == b


class TestQuality:
    def test_valid_on_synthetic(self, small_synthetic):
        iar_schedule(small_synthetic).validate(small_synthetic)

    def test_never_below_lower_bound(self, small_synthetic, fig2_instance):
        for inst in (small_synthetic, fig2_instance):
            span = simulate(inst, iar_schedule(inst), validate=False).makespan
            assert span >= lower_bound(inst) - 1e-9

    def test_beats_single_level_on_synthetic(self, small_synthetic):
        from repro.core.single_level import (
            base_level_schedule,
            optimizing_level_schedule,
        )

        iar_span = simulate(
            small_synthetic, iar_schedule(small_synthetic), validate=False
        ).makespan
        base_span = simulate(
            small_synthetic, base_level_schedule(small_synthetic), validate=False
        ).makespan
        opt_span = simulate(
            small_synthetic,
            optimizing_level_schedule(small_synthetic),
            validate=False,
        ).makespan
        assert iar_span <= min(base_span, opt_span) + 1e-9

    def test_linear_complexity_smoke(self, small_synthetic):
        # O(N + M log M): doubling the sequence should not blow up the
        # schedule size (at most 2 tasks per function).
        result = iar(small_synthetic)
        assert len(result.schedule) <= 2 * small_synthetic.num_functions


class TestVariants:
    def test_invalid_append_order_rejected(self):
        with pytest.raises(ValueError, match="append_order"):
            IARParams(append_order="alphabetical")

    def test_invalid_gap_priority_rejected(self):
        with pytest.raises(ValueError, match="gap_priority"):
            IARParams(gap_priority="random")

    @pytest.mark.parametrize(
        "append_order", ["compile_time", "benefit", "hotness", "first_call"]
    )
    def test_append_orders_all_valid(self, small_synthetic, append_order):
        result = iar(small_synthetic, IARParams(append_order=append_order))
        result.schedule.validate(small_synthetic)

    @pytest.mark.parametrize(
        "gap_priority", ["remaining_calls", "benefit_rate", "compile_time"]
    )
    def test_gap_priorities_all_valid(self, small_synthetic, gap_priority):
        result = iar(small_synthetic, IARParams(gap_priority=gap_priority))
        result.schedule.validate(small_synthetic)

    def test_append_order_changes_schedule(self, categorize_instance):
        a = iar(
            categorize_instance,
            IARParams(append_order="compile_time", refine_slack=False, fill_gap=False),
        ).schedule
        b = iar(
            categorize_instance,
            IARParams(append_order="hotness", refine_slack=False, fill_gap=False),
        ).schedule
        m = categorize_instance.num_functions
        # y (ch=20) before z (ch=50) by compile time; both have n=60 so
        # hotness ties break alphabetically (y before z) — use benefit
        # ordering equality instead: just assert the knob is wired by
        # checking the two appended tails are permutations.
        assert sorted(a.tasks[m:]) == sorted(b.tasks[m:])

    def test_variants_stay_close_to_paper_default(self, small_synthetic):
        from repro.core import lower_bound, simulate

        spans = {}
        for order in ("compile_time", "benefit", "hotness", "first_call"):
            sched = iar(small_synthetic, IARParams(append_order=order)).schedule
            spans[order] = simulate(small_synthetic, sched, validate=False).makespan
        spread = (max(spans.values()) - min(spans.values())) / min(spans.values())
        assert spread < 0.15  # the paper's "do not outperform" finding


class TestIARMetrics:
    def test_metrics_populated(self, small_synthetic):
        from repro.core.iar import iar
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        result = iar(small_synthetic, metrics=reg)
        snap = reg.snapshot()
        category_total = sum(
            v for k, v in snap.items() if k.startswith("iar.category.")
        )
        assert category_total == small_synthetic.num_functions
        assert snap.get("iar.exact_slack.proposed", 0) >= snap.get(
            "iar.exact_slack.accepted", 0
        )
        assert snap["iar.slack_upgrades"] == len(result.slack_upgrades)
        assert snap["iar.gap_appends"] == len(result.gap_appends)

    def test_metrics_do_not_change_the_schedule(self, small_synthetic):
        from repro.core.iar import iar
        from repro.observability import MetricsRegistry

        plain = iar(small_synthetic).schedule
        counted = iar(small_synthetic, metrics=MetricsRegistry()).schedule
        assert plain == counted
