"""The asyncio server: protocol surface, backpressure, admission.

Everything runs against a real loopback listener on a kernel-assigned
port; clients are raw stream readers/writers so the tests pin the wire
format, not the driver's conveniences.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.observability import MetricsRegistry
from repro.service import (
    DecisionEngine,
    DecisionServer,
    ServerConfig,
    encode,
)

PROFILE = {
    "op": "profile",
    "tenant": "t0",
    "function": "f",
    "compile_times": [1.0, 5.0],
    "exec_times": [10.0, 1.0],
}


def _run(coro):
    return asyncio.run(coro)


async def _start(engine=None, **config_kwargs) -> DecisionServer:
    server = DecisionServer(
        engine or DecisionEngine(), ServerConfig(**config_kwargs)
    )
    await server.start()
    return server


async def _ask(reader, writer, message):
    writer.write(encode(message))
    await writer.drain()
    line = await reader.readline()
    return json.loads(line.decode())


async def _shutdown(server, reader=None, writer=None):
    if writer is not None:
        response = await _ask(reader, writer, {"op": "shutdown"})
        assert response == {"ok": True, "op": "shutdown"}
    else:
        server.stop()
    await server.serve_until_stopped()


def test_ping_stats_shutdown():
    async def scenario():
        server = await _start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        assert await _ask(reader, writer, {"op": "ping"}) == {
            "ok": True,
            "op": "pong",
        }
        await _ask(reader, writer, PROFILE)
        decision = await _ask(
            reader, writer, {"op": "call", "tenant": "t0", "function": "f"}
        )
        assert decision["ok"] and decision["op"] == "decision"
        assert decision["action"] == "compile" and decision["level"] == 0
        stats = await _ask(reader, writer, {"op": "stats"})
        assert stats["summary"]["decisions"] == 1
        assert stats["rejected"] == 0
        await _shutdown(server, reader, writer)

    _run(scenario())


def test_malformed_lines_get_error_responses_not_disconnects():
    async def scenario():
        server = await _start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        writer.write(b"garbage\n")
        await writer.drain()
        response = json.loads((await reader.readline()).decode())
        assert response["ok"] is False and "JSON" in response["error"]
        # connection is still usable afterwards
        assert (await _ask(reader, writer, {"op": "ping"}))["ok"]
        await _shutdown(server, reader, writer)

    _run(scenario())


def test_engine_value_errors_become_error_responses():
    async def scenario():
        server = await _start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        response = await _ask(
            reader,
            writer,
            {"op": "call", "tenant": "t0", "function": "ghost", "seq": 9},
        )
        assert response["ok"] is False
        assert "unregistered function" in response["error"]
        assert response["seq"] == 9
        await _shutdown(server, reader, writer)

    _run(scenario())


def test_admission_control_rejects_above_the_limit():
    async def scenario():
        metrics = MetricsRegistry()
        engine = DecisionEngine(metrics=metrics)
        server = await _start(
            engine, queue_limit=64, admission_limit=2, batch_max=64
        )
        # Freeze the decision worker so the queue genuinely backs up.
        server._worker.cancel()
        try:
            await server._worker
        except asyncio.CancelledError:
            pass
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        for seq in range(5):
            writer.write(
                encode(
                    {
                        "op": "call",
                        "tenant": "t0",
                        "function": "f",
                        "seq": seq,
                    }
                )
            )
        await writer.drain()
        # Queue takes 2; the rest are refused immediately with a
        # retryable error while the accepted ones sit queued.
        rejected = []
        for _ in range(3):
            rejected.append(json.loads((await reader.readline()).decode()))
        for response in rejected:
            assert response["ok"] is False
            assert response["error"] == "overloaded"
            assert response["retry"] is True
        assert server.rejected == 3
        assert metrics.counter("service.rejected").value == 3
        # Thaw the worker; the queued two drain and answer.
        server._worker = asyncio.ensure_future(server._decision_worker())
        answered = []
        for _ in range(2):
            answered.append(json.loads((await reader.readline()).decode()))
        assert [a["seq"] for a in answered] == [0, 1]
        assert all(not a["ok"] for a in answered)  # 'f' never profiled
        await _shutdown(server, reader, writer)

    _run(scenario())


def test_backpressure_bounds_the_queue_without_dropping():
    async def scenario():
        engine = DecisionEngine()
        # admission limit far above the queue bound: the only flow
        # control in play is the blocking put (backpressure).
        server = await _start(
            engine, queue_limit=4, admission_limit=4096, batch_max=2
        )
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        await _ask(reader, writer, PROFILE)
        total = 200

        async def pump():
            for seq in range(total):
                writer.write(
                    encode(
                        {
                            "op": "call",
                            "tenant": "t0",
                            "function": "f",
                            "seq": seq,
                        }
                    )
                )
                await writer.drain()

        async def collect():
            out = []
            for _ in range(total):
                out.append(json.loads((await reader.readline()).decode()))
            return out

        _, responses = await asyncio.gather(pump(), collect())
        # tiny queue, no rejections, nothing dropped, order preserved
        assert server.rejected == 0
        assert [r["seq"] for r in responses] == list(range(total))
        assert all(r["ok"] for r in responses)
        assert engine.decisions == total
        await _shutdown(server, reader, writer)

    _run(scenario())


def test_batching_is_bounded_and_observed():
    async def scenario():
        metrics = MetricsRegistry()
        engine = DecisionEngine(metrics=metrics)
        server = await _start(engine, batch_max=8)
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        await _ask(reader, writer, PROFILE)
        for seq in range(50):
            writer.write(
                encode(
                    {
                        "op": "call",
                        "tenant": "t0",
                        "function": "f",
                        "seq": seq,
                    }
                )
            )
        await writer.drain()
        for _ in range(50):
            await reader.readline()
        assert 1 <= server.max_batch_seen <= 8
        snap = metrics.snapshot()
        assert snap["service.batch_size"]["count"] >= 1
        assert snap["service.latency_ms"]["count"] == 51  # profile + calls
        await _shutdown(server, reader, writer)

    _run(scenario())


def test_config_validation():
    with pytest.raises(ValueError, match="batch_max"):
        DecisionServer(DecisionEngine(), ServerConfig(batch_max=0))
    with pytest.raises(ValueError, match="queue_limit"):
        DecisionServer(DecisionEngine(), ServerConfig(queue_limit=0))
