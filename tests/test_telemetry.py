"""Unit tests for ``repro.telemetry``: tagged metrics, spans, errors,
Prometheus rendering/validation, and SLO tracking."""

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.telemetry import (
    ServiceMetrics,
    ServiceTelemetry,
    SloTracker,
    metric_key,
    render_prometheus,
    split_metric_key,
    structured_error,
    summarize_error,
    validate_exposition,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestMetricKey:
    def test_no_labels_is_identity(self):
        assert metric_key("service.decisions") == "service.decisions"
        assert split_metric_key("service.decisions") == ("service.decisions", {})

    def test_labels_sorted_and_round_trip(self):
        key = metric_key("d", b=1, a="x")
        assert key == "d{a=x,b=1}"
        assert split_metric_key(key) == ("d", {"a": "x", "b": "1"})

    def test_same_logical_series_same_key(self):
        assert metric_key("d", shard=2, tenant="t") == metric_key(
            "d", tenant="t", shard=2
        )

    def test_reserved_characters_rejected(self):
        for bad in ("a{b", "a}b", "a,b", "a=b"):
            with pytest.raises(ValueError, match="reserved"):
                metric_key("d", tenant=bad)

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            split_metric_key("d{nolabel}")


class TestStructuredError:
    def _boom(self):
        raise RuntimeError("kaput")

    def test_record_shape(self):
        try:
            self._boom()
        except RuntimeError as exc:
            record = structured_error(exc, "unit-test")
        assert record["where"] == "unit-test"
        assert record["type"] == "RuntimeError"
        assert record["message"] == "kaput"
        assert any("in _boom" in frame for frame in record["traceback"])
        assert len(record["traceback"]) <= 3
        assert summarize_error(record) == "unit-test: RuntimeError: kaput"


class TestServiceMetrics:
    def test_tagged_counter_and_snapshot(self):
        metrics = ServiceMetrics()
        metrics.count("service.decisions", shard=0, tenant="t1")
        metrics.count("service.decisions", shard=0, tenant="t1")
        metrics.count("service.decisions", shard=1, tenant="t2")
        snap = metrics.snapshot()
        assert snap["service.decisions{shard=0,tenant=t1}"] == 2
        assert snap["service.decisions{shard=1,tenant=t2}"] == 1

    def test_span_lifecycle_records_stages(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        span = metrics.begin_span("t1.1", "t1")
        clock.advance(0.010)
        metrics.mark_admitted(span)
        clock.advance(0.020)
        metrics.mark_decided(span)
        clock.advance(0.005)
        metrics.finish_span(span)
        snap = metrics.snapshot()
        assert snap["service.span.queue_ms"]["count"] == 1
        assert snap["service.span.queue_ms"]["total"] == pytest.approx(10.0)
        assert snap["service.span.decide_ms"]["total"] == pytest.approx(20.0)
        assert snap["service.span.respond_ms"]["total"] == pytest.approx(5.0)
        assert snap["service.span.total_ms{tenant=t1}"]["total"] == pytest.approx(
            35.0
        )

    def test_span_without_decision_skips_decide_stage(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        span = metrics.begin_span("t1.1", "t1")
        clock.advance(0.010)
        metrics.finish_span(span)
        snap = metrics.snapshot()
        assert "service.span.decide_ms" not in snap
        assert snap["service.span.total_ms{tenant=t1}"]["count"] == 1

    def test_count_error(self):
        metrics = ServiceMetrics()
        record = metrics.count_error(ValueError("bad"), "worker")
        assert record["type"] == "ValueError"
        snap = metrics.snapshot()
        assert snap["service.errors{type=ValueError}"] == 1


class TestPromText:
    def test_render_and_validate_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("service.decisions{shard=0,tenant=t1}").inc(4)
        registry.gauge("service.queue_depth").set(7)
        hist = registry.histogram("service.latency_ms")
        for value in range(100):
            hist.record(float(value))
        text = render_prometheus(registry)
        count = validate_exposition(text)
        assert count >= 5
        assert 'service_decisions_total{shard="0",tenant="t1"} 4' in text
        assert "# TYPE service_decisions_total counter" in text
        assert "# TYPE service_latency_ms summary" in text
        assert 'service_latency_ms{quantile="0.99"}' in text
        assert "service_latency_ms_count 100" in text

    def test_multiple_registries_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("service.decisions{tenant=t1}").inc()
        b.counter("service.decisions{tenant=t2}").inc()
        text = render_prometheus(a, b)
        assert text.count("# TYPE service_decisions_total counter") == 1
        assert validate_exposition(text) == 2

    def test_duplicate_sample_across_registries_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("service.decisions").inc()
        b.counter("service.decisions").inc(2)
        with pytest.raises(ValueError, match="duplicate sample"):
            render_prometheus(a, b)

    def test_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("service.depth_total").inc()
        b.gauge("service.depth_total").set(1)
        with pytest.raises(ValueError, match="rendered as both"):
            render_prometheus(a, b)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert validate_exposition("") == 0

    def test_validator_rejects_garbage(self):
        cases = [
            ("no trailing newline", "a_total 1"),
            ("malformed sample", "not a sample!!\n"),
            ("bad value", "a_total xyz\n"),
            ("empty label set", "a_total{} 1\n"),
            (
                "duplicate sample",
                "a_total 1\na_total 2\n",
            ),
            (
                "duplicate TYPE",
                "# TYPE a counter\n# TYPE a counter\na 1\n",
            ),
            (
                "TYPE after samples",
                "a 1\n# TYPE a counter\n",
            ),
            (
                "duplicate label",
                'a{x="1",x="2"} 1\n',
            ),
            (
                "unterminated label value",
                'a{x="1} 1\n',
            ),
        ]
        for name, text in cases:
            with pytest.raises(ValueError):
                validate_exposition(text), name

    def test_validator_accepts_escaped_label_values(self):
        text = 'a_total{msg="he said \\"hi\\", then left"} 1\n'
        assert validate_exposition(text) == 1


class TestSloTracker:
    def test_quantiles_and_rates(self):
        wall = FakeClock(1000.0)
        tracker = SloTracker(window_s=60.0, wall=wall)
        for i in range(100):
            tracker.observe_decision("t1", float(i))
        tracker.observe_rejection("t1")
        snap = tracker.snapshot()["t1"]
        assert snap["decisions"] == 100
        assert snap["rejections"] == 1
        assert snap["rejection_rate"] == pytest.approx(1 / 101)
        assert snap["p50_ms"] is not None
        assert snap["window"]["decisions"] == 100
        assert snap["window"]["p99_ms"] == pytest.approx(98.01)

    def test_window_trims_old_samples(self):
        wall = FakeClock(0.0)
        tracker = SloTracker(window_s=10.0, wall=wall)
        tracker.observe_decision("t1", 5.0)
        wall.advance(100.0)
        tracker.observe_decision("t1", 7.0)
        snap = tracker.snapshot()["t1"]
        # Cumulative view keeps both; the window only sees the recent one.
        assert snap["decisions"] == 2
        assert snap["window"]["decisions"] == 1
        assert snap["window"]["p50_ms"] == pytest.approx(7.0)

    def test_rejection_only_tenant_appears(self):
        tracker = SloTracker(wall=FakeClock())
        tracker.observe_rejection("ghost")
        snap = tracker.snapshot()["ghost"]
        assert snap["decisions"] == 0
        assert snap["rejections"] == 1
        assert snap["rejection_rate"] == 1.0
        assert snap["p50_ms"] is None

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SloTracker(window_s=0.0)


class TestServiceTelemetry:
    def test_plane_is_inert_until_poked(self):
        plane = ServiceTelemetry()
        assert plane.snapshot() == {}
        assert plane.dump_flight("noop") is None  # no flight_dir configured

    def test_note_decision_feeds_metrics_and_flight(self):
        plane = ServiceTelemetry(shards=2)
        event = {"op": "call", "tenant": "t1", "function": "f", "seq": 1}
        record = {
            "tenant": "t1",
            "seq": 1,
            "function": "f",
            "action": "compile",
            "level": 2,
            "attempts": 1,
            "corr": "t1.1",
        }
        plane.note_decision(event, record, shard=1, tally={"compile_fail": 1})
        snap = plane.snapshot()
        assert snap["service.decisions{shard=1,tenant=t1}"] == 1
        assert snap["service.promotions{level=2}"] == 1
        entries = list(plane.flight.entries())
        assert len(entries) == 1
        assert entries[0]["corr"] == "t1.1"
        assert entries[0]["faults"] == {"compile_fail": 1}
        assert entries[0]["shard"] == 1

    def test_note_error_retains_record(self):
        plane = ServiceTelemetry()
        record = plane.note_error(KeyError("missing"), "unit")
        assert record["type"] == "KeyError"
        assert list(plane.errors) == [record]
        assert "wall_ts" in record

    def test_registries_render_as_valid_exposition(self):
        plane = ServiceTelemetry()
        plane.note_latency("t1", 4.0)
        plane.note_rejection("t1")
        plane.note_queue_depth(3)
        text = render_prometheus(*plane.registries())
        assert validate_exposition(text) > 0
        assert 'service_tenant_decide_latency_ms_count{tenant="t1"} 1' in text
        assert 'service_tenant_rejections_total{tenant="t1"} 1' in text
