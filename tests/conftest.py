"""Shared fixtures: the paper's worked example and small workloads."""

from __future__ import annotations

import pytest

from repro.core import FunctionProfile, OCSPInstance
from repro.workloads import WorkloadSpec, generate


@pytest.fixture()
def fig_profiles():
    """Cost tables of the paper's Figures 1–2 example (reconstructed
    from the schedule timings printed in the figures).

    f0: one level (c=1, e=1); f1: (c=1,e=3) / (c=4,e=2);
    f2: (c=1,e=3) / (c=5,e=1).
    """
    return {
        "f0": FunctionProfile("f0", (1.0,), (1.0,)),
        "f1": FunctionProfile("f1", (1.0, 4.0), (3.0, 2.0)),
        "f2": FunctionProfile("f2", (1.0, 5.0), (3.0, 1.0)),
    }


@pytest.fixture()
def fig1_instance(fig_profiles):
    """Figure 1's call sequence: f0 f1 f2 f1."""
    return OCSPInstance(fig_profiles, ("f0", "f1", "f2", "f1"), name="fig1")


@pytest.fixture()
def fig2_instance(fig_profiles):
    """Figure 2's call sequence: f0 f1 f2 f1 f2."""
    return OCSPInstance(fig_profiles, ("f0", "f1", "f2", "f1", "f2"), name="fig2")


@pytest.fixture()
def two_function_instance():
    """A hot/cold pair used for targeted scheduler assertions."""
    profiles = {
        "hot": FunctionProfile("hot", (1.0, 10.0), (5.0, 1.0)),
        "cold": FunctionProfile("cold", (1.0, 20.0), (2.0, 1.0)),
    }
    calls = ("cold",) + ("hot",) * 20
    return OCSPInstance(profiles, calls, name="hotcold")


@pytest.fixture(scope="session")
def small_synthetic():
    """A deterministic mid-size synthetic instance (session-cached)."""
    spec = WorkloadSpec(
        name="small",
        num_functions=40,
        num_calls=4000,
        num_levels=4,
        base_compile_us=30.0,
        mean_exec_us=3.0,
    )
    return generate(spec, seed=11)


@pytest.fixture(scope="session")
def tiny_synthetic():
    """A tiny 2-level instance that exact search can solve."""
    spec = WorkloadSpec(
        name="tiny",
        num_functions=4,
        num_calls=16,
        num_levels=2,
        base_compile_us=20.0,
        mean_exec_us=10.0,
        max_speedup_range=(1.5, 4.0),
    )
    return generate(spec, seed=3)
