"""Tests for the make-span gap diagnosis tool."""

import pytest

from repro.analysis.diagnose import diagnose
from repro.core import Schedule, iar_schedule, lower_bound, simulate
from repro.core.schedule import ScheduleError
from repro.core.single_level import base_level_schedule


class TestDecomposition:
    def test_exact_decomposition(self, fig2_instance):
        sched = Schedule.of(("f0", 0), ("f1", 1), ("f2", 0))
        result = diagnose(fig2_instance, sched)
        assert result.makespan == pytest.approx(
            result.lower_bound
            + result.bubbles
            + result.excess_before_upgrade
            + result.excess_never_upgraded
        )

    def test_decomposition_on_synthetic(self, small_synthetic):
        for sched in (
            iar_schedule(small_synthetic),
            base_level_schedule(small_synthetic),
        ):
            d = diagnose(small_synthetic, sched)
            assert d.makespan == pytest.approx(
                d.lower_bound
                + d.bubbles
                + d.excess_before_upgrade
                + d.excess_never_upgraded
            )

    def test_base_level_gap_is_all_policy(self, small_synthetic):
        """base-level never upgrades: its level excess must be entirely
        'never_upgraded'."""
        d = diagnose(small_synthetic, base_level_schedule(small_synthetic))
        assert d.excess_before_upgrade == 0.0
        assert d.excess_never_upgraded > 0.0

    def test_matches_simulate(self, fig2_instance):
        sched = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))
        d = diagnose(fig2_instance, sched)
        sim = simulate(fig2_instance, sched)
        assert d.makespan == sim.makespan
        assert d.bubbles == sim.total_bubble_time
        assert d.lower_bound == lower_bound(fig2_instance)


class TestPerFunction:
    def test_per_function_sums_to_totals(self, small_synthetic):
        d = diagnose(small_synthetic, base_level_schedule(small_synthetic))
        assert sum(g.bubbles for g in d.per_function) == pytest.approx(d.bubbles)
        assert sum(g.excess_never_upgraded for g in d.per_function) == pytest.approx(
            d.excess_never_upgraded
        )

    def test_sorted_worst_first(self, small_synthetic):
        d = diagnose(small_synthetic, base_level_schedule(small_synthetic))
        totals = [g.total for g in d.per_function]
        assert totals == sorted(totals, reverse=True)

    def test_top_offenders_and_rows(self, small_synthetic):
        d = diagnose(small_synthetic, base_level_schedule(small_synthetic))
        top = d.top_offenders(3)
        assert len(top) == 3
        rows = d.rows(3)
        assert len(rows) == 3
        assert 0 <= rows[0]["share_of_gap"] <= 1.0 + 1e-9

    def test_before_upgrade_detected(self, fig2_instance):
        # s3 on fig2: f1's 1st call runs at level 0 while C1(f1) is
        # scheduled — timing excess, not policy.
        sched = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))
        d = diagnose(fig2_instance, sched)
        f1 = next(g for g in d.per_function if g.function == "f1")
        assert f1.excess_before_upgrade > 0.0
        f2 = next(g for g in d.per_function if g.function == "f2")
        assert f2.excess_never_upgraded > 0.0

    def test_normalized_and_gap(self, fig2_instance):
        sched = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0))
        d = diagnose(fig2_instance, sched)
        assert d.gap == pytest.approx(d.makespan - d.lower_bound)
        assert d.normalized == pytest.approx(d.makespan / d.lower_bound)

    def test_invalid_schedule_rejected(self, fig2_instance):
        with pytest.raises(ScheduleError):
            diagnose(fig2_instance, Schedule.of(("f0", 0)))


class TestPerInterval:
    def test_default_has_no_intervals(self, small_synthetic):
        d = diagnose(small_synthetic, base_level_schedule(small_synthetic))
        assert d.per_interval == ()
        assert d.interval_rows() == []

    def test_negative_intervals_rejected(self, small_synthetic):
        with pytest.raises(ValueError, match="intervals"):
            diagnose(
                small_synthetic,
                base_level_schedule(small_synthetic),
                intervals=-1,
            )

    def test_intervals_partition_the_timeline(self, small_synthetic):
        d = diagnose(
            small_synthetic, base_level_schedule(small_synthetic), intervals=8
        )
        assert len(d.per_interval) == 8
        assert d.per_interval[0].start == 0.0
        assert d.per_interval[-1].end == pytest.approx(d.makespan)
        for left, right in zip(d.per_interval, d.per_interval[1:]):
            assert left.end == pytest.approx(right.start)

    def test_interval_split_sums_to_totals(self, small_synthetic):
        sched = iar_schedule(small_synthetic)
        d = diagnose(small_synthetic, sched, intervals=5)
        assert sum(g.calls for g in d.per_interval) == small_synthetic.num_calls
        assert sum(g.bubbles for g in d.per_interval) == pytest.approx(d.bubbles)
        assert sum(
            g.excess_before_upgrade for g in d.per_interval
        ) == pytest.approx(d.excess_before_upgrade)
        assert sum(
            g.excess_never_upgraded for g in d.per_interval
        ) == pytest.approx(d.excess_never_upgraded)
        assert sum(g.total for g in d.per_interval) == pytest.approx(
            d.bubbles + d.excess_before_upgrade + d.excess_never_upgraded
        )

    def test_interval_totals_match_per_function(self, small_synthetic):
        """Two decompositions of the same gap agree with each other."""
        sched = base_level_schedule(small_synthetic)
        d = diagnose(small_synthetic, sched, intervals=3)
        assert sum(g.total for g in d.per_interval) == pytest.approx(
            sum(g.total for g in d.per_function)
        )

    def test_interval_rows_shape(self, small_synthetic):
        d = diagnose(
            small_synthetic, base_level_schedule(small_synthetic), intervals=4
        )
        rows = d.interval_rows()
        assert len(rows) == 4
        assert set(rows[0]) == {
            "interval", "calls", "bubbles", "before_upgrade",
            "never_upgraded", "share_of_gap",
        }
