"""Tests for the simulated multi-level compiler and profile extraction."""

import pytest

from repro.core import lower_bound, simulate
from repro.core.iar import iar_schedule
from repro.jitsim import (
    CompilerConfig,
    SimulatedCompiler,
    assemble,
    extract_instance,
    fib_program,
    loops_program,
    trace_to_instance,
    Interpreter,
)


def straightline(rounds=4):
    return assemble(
        "s", 1, 1,
        "\n".join("LOAD 0\nPUSH 1\nADD\nSTORE 0" for _ in range(rounds))
        + "\nLOAD 0\nRET",
    )


def looped():
    return assemble(
        "l", 1, 1,
        """
        top:
            LOAD 0
            JZ out
            LOAD 0
            PUSH 1
            SUB
            STORE 0
            JMP top
        out:
            PUSH 0
            RET
        """,
    )


class TestCompilerConfig:
    def test_default_levels(self):
        assert CompilerConfig().num_levels == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CompilerConfig(per_instr_us=(1.0,), fixed_us=(1.0, 2.0))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CompilerConfig(
                per_instr_us=(-1.0,), fixed_us=(1.0,), tier_speedups=(2.0,)
            )

    def test_zero_speedup_rejected(self):
        with pytest.raises(ValueError):
            CompilerConfig(
                per_instr_us=(1.0,), fixed_us=(1.0,), tier_speedups=(0.0,)
            )


class TestSimulatedCompiler:
    def test_compile_time_grows_with_size_and_level(self):
        comp = SimulatedCompiler()
        small, large = straightline(2), straightline(8)
        assert comp.compile_time(large, 0) > comp.compile_time(small, 0)
        for level in range(1, 4):
            assert comp.compile_time(small, level) > comp.compile_time(
                small, level - 1
            )

    def test_speedup_monotone_in_level(self):
        comp = SimulatedCompiler()
        func = straightline()
        speedups = [comp.speedup(func, lvl) for lvl in range(4)]
        assert speedups == sorted(speedups)

    def test_loop_bonus_at_optimizing_levels(self):
        comp = SimulatedCompiler()
        loop, line = looped(), straightline()
        # Level 0/1 have no loop bonus; levels >= 2 reward back edges.
        ratio_low = comp.speedup(loop, 1) / comp.speedup(line, 1)
        ratio_high = comp.speedup(loop, 2) / comp.speedup(line, 2)
        assert ratio_high > ratio_low

    def test_profile_satisfies_definition1(self):
        comp = SimulatedCompiler()
        prof = comp.profile(looped(), mean_instructions=100.0)
        # FunctionProfile validates monotonicity at construction.
        assert prof.num_levels == 4
        assert prof.exec_times[0] > prof.exec_times[-1]

    def test_exec_time_scales_with_dynamic_work(self):
        comp = SimulatedCompiler()
        func = straightline()
        assert comp.exec_time(func, 0, 1000.0) == pytest.approx(
            10 * comp.exec_time(func, 0, 100.0)
        )


class TestExtraction:
    def test_extract_instance_end_to_end(self):
        inst = extract_instance(fib_program(), 10)
        assert inst.call_count("fib") > 100
        assert inst.profiles["fib"].num_levels == 4
        sched = iar_schedule(inst)
        result = simulate(inst, sched, validate=False)
        assert result.makespan >= lower_bound(inst)

    def test_trace_to_instance_uses_mean_instructions(self):
        program = fib_program()
        trace = Interpreter(program).run(8)
        inst = trace_to_instance(program, trace)
        means = trace.mean_instructions()
        comp = SimulatedCompiler()
        assert inst.profiles["fib"].exec_times[0] == pytest.approx(
            comp.exec_time(program.functions["fib"], 0, means["fib"])
        )

    def test_custom_config(self):
        config = CompilerConfig(
            per_instr_us=(1.0, 5.0),
            fixed_us=(10.0, 100.0),
            tier_speedups=(2.0, 6.0),
        )
        inst = extract_instance(loops_program(), config=config)
        assert inst.profiles["hot_leaf"].num_levels == 2

    def test_instance_name(self):
        inst = extract_instance(fib_program(), 5, name="fib5")
        assert inst.name == "fib5"
        assert extract_instance(fib_program(), 5).name == "main"

    def test_scheduling_on_phased_program(self):
        from repro.jitsim import phased_program

        inst = extract_instance(phased_program(phase_calls=100))
        sched = iar_schedule(inst)
        sched.validate(inst)
