"""Tests for interpreter-tier support (Section 8)."""

import pytest

from repro.core import (
    Schedule,
    iar_schedule,
    interpreter_prelude,
    lift_schedule,
    simulate,
    with_interpreter_tier,
)
from repro.core.single_level import base_level_schedule


class TestWithInterpreterTier:
    def test_adds_free_level(self, fig1_instance):
        tiered = with_interpreter_tier(fig1_instance, slowdown=4.0)
        prof = tiered.profiles["f1"]
        assert prof.num_levels == 3
        assert prof.compile_times[0] == 0.0
        assert prof.exec_times[0] == 12.0  # 3.0 * 4

    def test_preserves_calls(self, fig1_instance):
        tiered = with_interpreter_tier(fig1_instance)
        assert tiered.calls == fig1_instance.calls

    def test_rejects_speedy_interpreter(self, fig1_instance):
        with pytest.raises(ValueError):
            with_interpreter_tier(fig1_instance, slowdown=0.5)

    def test_slowdown_one_allowed(self, fig1_instance):
        tiered = with_interpreter_tier(fig1_instance, slowdown=1.0)
        prof = tiered.profiles["f0"]
        assert prof.exec_times[0] == prof.exec_times[1]


class TestPrelude:
    def test_covers_all_called_functions(self, fig2_instance):
        tiered = with_interpreter_tier(fig2_instance)
        prelude = interpreter_prelude(tiered)
        assert sorted(t.function for t in prelude) == sorted(
            tiered.called_functions
        )
        assert all(t.level == 0 for t in prelude)

    def test_rejects_untied_instance(self, fig2_instance):
        with pytest.raises(ValueError, match="non-zero"):
            interpreter_prelude(fig2_instance)

    def test_no_bubbles_ever(self, fig2_instance, small_synthetic):
        """With the prelude, every function is runnable at t=0, so no
        schedule has bubbles and makespan == total execution time."""
        for inst in (fig2_instance, small_synthetic):
            tiered = with_interpreter_tier(inst)
            for base in (
                interpreter_prelude(tiered),
                lift_schedule(tiered, base_level_schedule(inst)),
                lift_schedule(tiered, iar_schedule(inst)),
            ):
                result = simulate(tiered, base, validate=False)
                assert result.total_bubble_time == 0.0
                assert result.makespan == pytest.approx(result.total_exec_time)


class TestLiftSchedule:
    def test_levels_shift(self, fig1_instance):
        tiered = with_interpreter_tier(fig1_instance)
        original = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))
        lifted = lift_schedule(tiered, original)
        lifted.validate(tiered)
        shifted = lifted.tasks[len(tiered.called_functions):]
        assert [(t.function, t.level) for t in shifted] == [
            ("f0", 1), ("f1", 1), ("f2", 1), ("f1", 2),
        ]

    def test_lifted_never_slower_than_compiled_only_plus_waits(self, fig2_instance):
        """Interpretation removes the initial compile waits; with
        instant fallbacks the make-span must not exceed (compiled-only
        make-span) + (interpreted slowdown on early calls).  We check
        the weaker, exact property: lifted IAR >= the tiered optimum's
        bound and has zero bubbles."""
        tiered = with_interpreter_tier(fig2_instance, slowdown=2.0)
        lifted = lift_schedule(tiered, iar_schedule(fig2_instance))
        result = simulate(tiered, lifted, validate=False)
        assert result.total_bubble_time == 0.0

    def test_iar_directly_on_tiered_instance(self, small_synthetic):
        """IAR must handle a zero-compile-time level gracefully."""
        tiered = with_interpreter_tier(small_synthetic)
        sched = iar_schedule(tiered)
        sched.validate(tiered)
        result = simulate(tiered, sched, validate=False)
        assert result.makespan > 0
