"""Tests for the online/noisy-estimate extensions (Section 8)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FunctionProfile,
    estimate_instance,
    online_iar_makespan,
    perturb_sequence,
    perturb_times,
)


class TestPerturbTimes:
    def _profile(self):
        return FunctionProfile("f", (1.0, 10.0, 30.0), (9.0, 3.0, 1.0))

    def test_zero_error_is_identity(self):
        prof = self._profile()
        assert perturb_times(prof, 0.0, random.Random(0)) == prof

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            perturb_times(self._profile(), -0.1, random.Random(0))

    def test_monotonicity_preserved(self):
        for seed in range(30):
            noisy = perturb_times(self._profile(), 1.0, random.Random(seed))
            for j in range(1, noisy.num_levels):
                assert noisy.compile_times[j] >= noisy.compile_times[j - 1]
                assert noisy.exec_times[j] <= noisy.exec_times[j - 1]

    def test_correlated_mode_preserves_monotonicity(self):
        for seed in range(30):
            noisy = perturb_times(
                self._profile(), 1.0, random.Random(seed), correlated=True
            )
            for j in range(1, noisy.num_levels):
                assert noisy.compile_times[j] >= noisy.compile_times[j - 1]
                assert noisy.exec_times[j] <= noisy.exec_times[j - 1]

    def test_deterministic_given_rng(self):
        a = perturb_times(self._profile(), 0.5, random.Random(7))
        b = perturb_times(self._profile(), 0.5, random.Random(7))
        assert a == b

    def test_actually_perturbs(self):
        noisy = perturb_times(self._profile(), 0.5, random.Random(1))
        assert noisy != self._profile()


class TestEstimateInstance:
    def test_same_calls(self, small_synthetic):
        noisy = estimate_instance(small_synthetic, 0.3, seed=1)
        assert noisy.calls == small_synthetic.calls

    def test_deterministic(self, small_synthetic):
        a = estimate_instance(small_synthetic, 0.3, seed=1)
        b = estimate_instance(small_synthetic, 0.3, seed=1)
        assert a.profiles == b.profiles

    def test_seed_changes_result(self, small_synthetic):
        a = estimate_instance(small_synthetic, 0.3, seed=1)
        b = estimate_instance(small_synthetic, 0.3, seed=2)
        assert a.profiles != b.profiles


class TestPerturbSequence:
    def test_zero_error_is_identity(self, small_synthetic):
        assert (
            perturb_sequence(small_synthetic, 0.0).calls == small_synthetic.calls
        )

    def test_bad_rate_rejected(self, small_synthetic):
        with pytest.raises(ValueError):
            perturb_sequence(small_synthetic, 1.5)

    def test_every_function_still_predicted(self, small_synthetic):
        noisy = perturb_sequence(small_synthetic, 0.4, seed=3)
        assert set(noisy.called_functions) == set(small_synthetic.called_functions)

    def test_changes_sequence(self, small_synthetic):
        noisy = perturb_sequence(small_synthetic, 0.4, seed=3)
        assert noisy.calls != small_synthetic.calls

    def test_length_roughly_preserved(self, small_synthetic):
        noisy = perturb_sequence(small_synthetic, 0.3, seed=3)
        ratio = noisy.num_calls / small_synthetic.num_calls
        assert 0.7 < ratio < 1.3


class TestOnlineIAR:
    def test_perfect_information_matches_oracle(self, small_synthetic):
        result = online_iar_makespan(small_synthetic, 0.0, 0.0)
        assert result.makespan == pytest.approx(result.oracle_makespan)
        assert result.degradation == pytest.approx(1.0)

    def test_noise_never_beats_bound(self, small_synthetic):
        result = online_iar_makespan(small_synthetic, 0.5, 0.1, seed=2)
        assert result.makespan >= result.lower_bound - 1e-9

    def test_degradation_grows_with_noise_on_average(self, small_synthetic):
        small = [
            online_iar_makespan(small_synthetic, 0.1, 0.0, seed=s).degradation
            for s in range(4)
        ]
        large = [
            online_iar_makespan(small_synthetic, 2.0, 0.3, seed=s).degradation
            for s in range(4)
        ]
        assert sum(large) / len(large) >= sum(small) / len(small) - 0.02

    def test_missing_functions_fallback_compiled(self, small_synthetic):
        # Heavy sequence noise may drop functions from the prediction;
        # the runtime falls back to level-0 compiles so execution on
        # the true sequence stays legal (no exception = pass).
        result = online_iar_makespan(small_synthetic, 0.0, 0.6, seed=5)
        assert result.makespan > 0


class TestPerturbTimesExtremes:
    """Regression pins for the overflow/non-finite perturbation bugs.

    Before the fix, two failure classes escaped ``_monotone_fix``:
    ``rng.lognormvariate`` raising ``OverflowError`` at large sigma,
    and finite-time x huge-factor products overflowing to ``inf``
    (which compares monotone but fails ``FunctionProfile``'s
    finiteness validation).  Both now saturate at the largest finite
    float, so perturbation always yields a valid profile.
    """

    _EXTREME = FunctionProfile(
        "x", (1e-300, 1e-300, 1e300), (1e300, 1e-300, 1e-300)
    )

    def _assert_valid(self, noisy):
        for j in range(noisy.num_levels):
            assert math.isfinite(noisy.compile_times[j])
            assert math.isfinite(noisy.exec_times[j])
        for j in range(1, noisy.num_levels):
            assert noisy.compile_times[j] >= noisy.compile_times[j - 1]
            assert noisy.exec_times[j] <= noisy.exec_times[j - 1]

    def test_product_overflow_saturates(self):
        # seed 0 / rel_error 100 used to raise ModelError("exec time
        # inf is not finite") via an overflowed product.
        for corr in (False, True):
            noisy = perturb_times(
                self._EXTREME, 100.0, random.Random(0), correlated=corr
            )
            self._assert_valid(noisy)

    def test_lognormvariate_overflow_saturates(self):
        # seed 0 / rel_error 700 used to raise OverflowError("math
        # range error") inside rng.lognormvariate itself.
        noisy = perturb_times(self._EXTREME, 700.0, random.Random(0))
        self._assert_valid(noisy)
        moderate = FunctionProfile("g", (1.0, 10.0), (9.0, 1.0))
        self._assert_valid(perturb_times(moderate, 700.0, random.Random(1)))

    def test_equal_adjacent_levels_never_reorder(self):
        # Perturbing a tie can widen it but must not reorder it: the
        # forward clamp turns compile times into a running max and
        # exec times into a running min.
        tied = FunctionProfile("t", (5.0, 5.0, 5.0), (2.0, 2.0, 2.0))
        for seed in range(50):
            self._assert_valid(perturb_times(tied, 1.0, random.Random(seed)))

    def test_moderate_magnitudes_bitwise_unchanged(self):
        # The clamp only engages on overflow, and the draw happens
        # before the clamp, so every non-overflowing seed keeps its
        # exact historical output stream.
        prof = FunctionProfile("f", (1.0, 10.0, 30.0), (9.0, 3.0, 1.0))
        noisy = perturb_times(prof, 1.0, random.Random(5))
        raw = random.Random(5)
        expected_c = [c * raw.lognormvariate(0.0, 0.5) for c in prof.compile_times]
        expected_e = [e * raw.lognormvariate(0.0, 1.0) for e in prof.exec_times]
        for j in range(1, 3):
            expected_c[j] = max(expected_c[j], expected_c[j - 1])
            expected_e[j] = min(expected_e[j], expected_e[j - 1])
        assert noisy.compile_times == tuple(expected_c)
        assert noisy.exec_times == tuple(expected_e)


@settings(max_examples=200, deadline=None)
@given(
    times=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e300, allow_nan=False),
            st.floats(min_value=1e-300, max_value=1e300, allow_nan=False),
        ),
        min_size=1,
        max_size=6,
    ),
    rel_error=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    correlated=st.booleans(),
)
def test_perturbed_tables_always_monotone_and_finite(
    times, rel_error, seed, correlated
):
    """Property: perturbation always returns a valid profile — compile
    times finite and non-decreasing, exec times finite and
    non-increasing — for any input profile, error magnitude, and seed
    (the FunctionProfile constructor re-validates both invariants)."""
    compile_times = tuple(sorted(c for c, _ in times))
    exec_times = tuple(sorted((e for _, e in times), reverse=True))
    profile = FunctionProfile("p", compile_times, exec_times)
    noisy = perturb_times(
        profile, rel_error, random.Random(seed), correlated=correlated
    )
    assert noisy.num_levels == profile.num_levels
    for j in range(noisy.num_levels):
        assert math.isfinite(noisy.compile_times[j])
        assert math.isfinite(noisy.exec_times[j])
    for j in range(1, noisy.num_levels):
        assert noisy.compile_times[j] >= noisy.compile_times[j - 1]
        assert noisy.exec_times[j] <= noisy.exec_times[j - 1]
