"""Tests for the online/noisy-estimate extensions (Section 8)."""

import random

import pytest

from repro.core import (
    FunctionProfile,
    estimate_instance,
    online_iar_makespan,
    perturb_sequence,
    perturb_times,
)


class TestPerturbTimes:
    def _profile(self):
        return FunctionProfile("f", (1.0, 10.0, 30.0), (9.0, 3.0, 1.0))

    def test_zero_error_is_identity(self):
        prof = self._profile()
        assert perturb_times(prof, 0.0, random.Random(0)) == prof

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            perturb_times(self._profile(), -0.1, random.Random(0))

    def test_monotonicity_preserved(self):
        for seed in range(30):
            noisy = perturb_times(self._profile(), 1.0, random.Random(seed))
            for j in range(1, noisy.num_levels):
                assert noisy.compile_times[j] >= noisy.compile_times[j - 1]
                assert noisy.exec_times[j] <= noisy.exec_times[j - 1]

    def test_correlated_mode_preserves_monotonicity(self):
        for seed in range(30):
            noisy = perturb_times(
                self._profile(), 1.0, random.Random(seed), correlated=True
            )
            for j in range(1, noisy.num_levels):
                assert noisy.compile_times[j] >= noisy.compile_times[j - 1]
                assert noisy.exec_times[j] <= noisy.exec_times[j - 1]

    def test_deterministic_given_rng(self):
        a = perturb_times(self._profile(), 0.5, random.Random(7))
        b = perturb_times(self._profile(), 0.5, random.Random(7))
        assert a == b

    def test_actually_perturbs(self):
        noisy = perturb_times(self._profile(), 0.5, random.Random(1))
        assert noisy != self._profile()


class TestEstimateInstance:
    def test_same_calls(self, small_synthetic):
        noisy = estimate_instance(small_synthetic, 0.3, seed=1)
        assert noisy.calls == small_synthetic.calls

    def test_deterministic(self, small_synthetic):
        a = estimate_instance(small_synthetic, 0.3, seed=1)
        b = estimate_instance(small_synthetic, 0.3, seed=1)
        assert a.profiles == b.profiles

    def test_seed_changes_result(self, small_synthetic):
        a = estimate_instance(small_synthetic, 0.3, seed=1)
        b = estimate_instance(small_synthetic, 0.3, seed=2)
        assert a.profiles != b.profiles


class TestPerturbSequence:
    def test_zero_error_is_identity(self, small_synthetic):
        assert (
            perturb_sequence(small_synthetic, 0.0).calls == small_synthetic.calls
        )

    def test_bad_rate_rejected(self, small_synthetic):
        with pytest.raises(ValueError):
            perturb_sequence(small_synthetic, 1.5)

    def test_every_function_still_predicted(self, small_synthetic):
        noisy = perturb_sequence(small_synthetic, 0.4, seed=3)
        assert set(noisy.called_functions) == set(small_synthetic.called_functions)

    def test_changes_sequence(self, small_synthetic):
        noisy = perturb_sequence(small_synthetic, 0.4, seed=3)
        assert noisy.calls != small_synthetic.calls

    def test_length_roughly_preserved(self, small_synthetic):
        noisy = perturb_sequence(small_synthetic, 0.3, seed=3)
        ratio = noisy.num_calls / small_synthetic.num_calls
        assert 0.7 < ratio < 1.3


class TestOnlineIAR:
    def test_perfect_information_matches_oracle(self, small_synthetic):
        result = online_iar_makespan(small_synthetic, 0.0, 0.0)
        assert result.makespan == pytest.approx(result.oracle_makespan)
        assert result.degradation == pytest.approx(1.0)

    def test_noise_never_beats_bound(self, small_synthetic):
        result = online_iar_makespan(small_synthetic, 0.5, 0.1, seed=2)
        assert result.makespan >= result.lower_bound - 1e-9

    def test_degradation_grows_with_noise_on_average(self, small_synthetic):
        small = [
            online_iar_makespan(small_synthetic, 0.1, 0.0, seed=s).degradation
            for s in range(4)
        ]
        large = [
            online_iar_makespan(small_synthetic, 2.0, 0.3, seed=s).degradation
            for s in range(4)
        ]
        assert sum(large) / len(large) >= sum(small) / len(small) - 0.02

    def test_missing_functions_fallback_compiled(self, small_synthetic):
        # Heavy sequence noise may drop functions from the prediction;
        # the runtime falls back to level-0 compiles so execution on
        # the true sequence stays legal (no exception = pass).
        result = online_iar_makespan(small_synthetic, 0.0, 0.6, seed=5)
        assert result.makespan > 0
