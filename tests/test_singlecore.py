"""Tests for Theorem 1: single-core optimal scheduling."""

from itertools import permutations, product

import pytest

from repro.core import (
    FunctionProfile,
    OCSPInstance,
    Schedule,
    simulate_single_core,
)
from repro.core.singlecore import (
    most_cost_effective_levels,
    single_core_optimal_makespan,
    single_core_optimal_schedule,
)


class TestMostCostEffectiveLevels:
    def test_hot_function_gets_deep_level(self, two_function_instance):
        levels = most_cost_effective_levels(two_function_instance)
        assert levels["hot"] == 1   # 20 calls: 10+20 < 1+100
        assert levels["cold"] == 0  # 1 call: 1+2 < 20+1

    def test_only_called_functions_included(self):
        profiles = {
            "a": FunctionProfile("a", (1.0,), (1.0,)),
            "b": FunctionProfile("b", (1.0,), (1.0,)),
        }
        inst = OCSPInstance(profiles, ("a",))
        assert set(most_cost_effective_levels(inst)) == {"a"}


class TestOptimalSchedule:
    def test_each_function_once_at_its_level(self, two_function_instance):
        sched = single_core_optimal_schedule(two_function_instance)
        assert [t.function for t in sched] == ["cold", "hot"]
        assert sched.highest_level_of("hot") == 1
        assert sched.highest_level_of("cold") == 0

    def test_makespan_formula_matches_simulation(self, two_function_instance):
        sched = single_core_optimal_schedule(two_function_instance)
        sim = simulate_single_core(two_function_instance, sched)
        assert sim.makespan == pytest.approx(
            single_core_optimal_makespan(two_function_instance)
        )


class TestTheorem1Exhaustively:
    """Verify optimality by enumerating every single-compilation
    schedule (all orders x all level choices) on a small instance."""

    def _enumerate_makespans(self, instance):
        functions = instance.called_functions
        level_choices = [range(instance.profiles[f].num_levels) for f in functions]
        for order in permutations(functions):
            for levels in product(*level_choices):
                by_name = dict(zip(functions, levels))
                sched = Schedule.of(*((f, by_name[f]) for f in order))
                yield simulate_single_core(instance, sched).makespan

    def test_formula_is_minimum(self, fig2_instance):
        best = min(self._enumerate_makespans(fig2_instance))
        assert best == pytest.approx(single_core_optimal_makespan(fig2_instance))

    def test_any_order_achieves_optimum(self, fig2_instance):
        # Theorem 1: an ARBITRARY order at the cost-effective levels is
        # optimal — check every permutation explicitly.
        functions = fig2_instance.called_functions
        levels = most_cost_effective_levels(fig2_instance)
        target = single_core_optimal_makespan(fig2_instance)
        for order in permutations(functions):
            sched = Schedule.of(*((f, levels[f]) for f in order))
            assert simulate_single_core(fig2_instance, sched).makespan == pytest.approx(
                target
            )

    def test_recompilation_never_helps_single_core(self, fig2_instance):
        # Adding a recompilation only adds compile time on one core.
        levels = most_cost_effective_levels(fig2_instance)
        base = single_core_optimal_schedule(fig2_instance)
        base_span = simulate_single_core(fig2_instance, base).makespan
        with_recompile = Schedule.of(
            ("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1), ("f2", 1)
        )
        assert (
            simulate_single_core(fig2_instance, with_recompile).makespan >= base_span
        )

    def test_synthetic_instance(self, tiny_synthetic):
        best = min(self._enumerate_makespans(tiny_synthetic))
        assert best == pytest.approx(single_core_optimal_makespan(tiny_synthetic))
