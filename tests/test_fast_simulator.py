"""Differential tests: FastSimulator vs the reference simulator.

The fast engine promises *bitwise* equality with
:func:`repro.core.makespan.simulate` — same float operations in the
same order — for full evaluation, timeline recording, and the
incremental propose/commit/preview path.  These tests enforce that
contract on hundreds of random instances (hypothesis strategies plus a
seeded generator loop), across 1–4 compile threads and all four
local-search move kinds.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CompileTask,
    FastSimulator,
    FunctionProfile,
    OCSPInstance,
    Schedule,
    simulate,
)
from repro.core.localsearch import _propose, improve_schedule
from repro.workloads import WorkloadSpec, generate

times = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)


@st.composite
def profiles_strategy(draw, max_functions=8, max_levels=4):
    n_funcs = draw(st.integers(min_value=1, max_value=max_functions))
    profiles: Dict[str, FunctionProfile] = {}
    for i in range(n_funcs):
        n_levels = draw(st.integers(min_value=1, max_value=max_levels))
        compile_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels))
        )
        exec_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels)),
            reverse=True,
        )
        name = f"f{i}"
        profiles[name] = FunctionProfile(name, tuple(compile_times), tuple(exec_times))
    return profiles


@st.composite
def instances(draw, max_functions=8, max_levels=4, max_calls=24):
    profiles = draw(profiles_strategy(max_functions, max_levels))
    names = sorted(profiles)
    calls = draw(st.lists(st.sampled_from(names), min_size=1, max_size=max_calls))
    return OCSPInstance(profiles, tuple(calls), name="diff")


def random_schedule(instance: OCSPInstance, rng: random.Random) -> Schedule:
    """A uniform-ish random *valid* schedule: every called function gets
    a random strictly increasing level chain, chains interleave randomly."""
    chains: List[List[CompileTask]] = []
    for fname in instance.called_functions:
        levels = sorted(
            rng.sample(
                range(instance.profiles[fname].num_levels),
                rng.randint(1, instance.profiles[fname].num_levels),
            )
        )
        chains.append([CompileTask(fname, lvl) for lvl in levels])
    tasks: List[CompileTask] = []
    while chains:
        chain = rng.choice(chains)
        tasks.append(chain.pop(0))
        if not chain:
            chains.remove(chain)
    return Schedule(tuple(tasks))


def random_instance(rng: random.Random) -> OCSPInstance:
    nf = rng.randint(1, 8)
    spec = WorkloadSpec(
        name=f"diff-{rng.randrange(1 << 30)}",
        num_functions=nf,
        num_calls=rng.randint(nf, 40 + nf),
        num_levels=rng.randint(1, 4),
    )
    return generate(spec, seed=rng.randrange(1 << 30))


def assert_results_equal(fast, ref) -> None:
    """Exact (bitwise) MakespanResult equality, field by field for a
    readable diff on failure."""
    assert fast.makespan == ref.makespan
    assert fast.compile_end == ref.compile_end
    assert fast.total_bubble_time == ref.total_bubble_time
    assert fast.total_exec_time == ref.total_exec_time
    assert fast.calls_at_level == ref.calls_at_level
    assert fast.task_timings == ref.task_timings
    assert fast.call_timings == ref.call_timings


# ---------------------------------------------------------------------------
# full evaluation
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(instances(), st.integers(min_value=1, max_value=4), st.randoms())
def test_evaluate_matches_reference(instance, threads, hyp_rng):
    rng = random.Random(hyp_rng.randrange(1 << 30))
    schedule = random_schedule(instance, rng)
    fast = FastSimulator(instance, compile_threads=threads)
    for record in (False, True):
        assert_results_equal(
            fast.evaluate(schedule, record_timeline=record),
            simulate(
                instance,
                schedule,
                compile_threads=threads,
                record_timeline=record,
            ),
        )


def test_evaluate_empty_trace_single_function():
    prof = {"f0": FunctionProfile("f0", (1.0, 2.0), (4.0, 1.0))}
    inst = OCSPInstance(prof, ("f0",), name="tiny")
    sched = Schedule.of(("f0", 0))
    fast = FastSimulator(inst)
    assert_results_equal(
        fast.evaluate(sched, record_timeline=True),
        simulate(inst, sched, record_timeline=True),
    )


def test_evaluate_preinstalled_matches_reference():
    rng = random.Random(7)
    for _ in range(20):
        instance = random_instance(rng)
        pre = {
            fname: rng.randrange(instance.profiles[fname].num_levels)
            for fname in instance.called_functions
            if rng.random() < 0.5
        }
        tasks = [
            t
            for t in random_schedule(instance, rng)
            if t.function not in pre
        ]
        schedule = Schedule(tuple(tasks))
        fast = FastSimulator(instance, preinstalled=pre)
        assert_results_equal(
            fast.evaluate(schedule, record_timeline=True),
            simulate(instance, schedule, preinstalled=pre, record_timeline=True),
        )


# ---------------------------------------------------------------------------
# incremental propose / commit / preview
# ---------------------------------------------------------------------------


def _mutate(
    instance: OCSPInstance, tasks: List[CompileTask], rng: random.Random
) -> Optional[List[CompileTask]]:
    """One random valid local-search move (None when the move fizzles)."""
    return _propose(instance, tasks, rng)


def test_incremental_differential_seeded():
    """The ISSUE's headline gate: >= 200 random cases, zero mismatches.

    Each case binds a random schedule, walks a chain of random
    local-search moves, and checks propose() spans, commit() results,
    and the committed baseline against the reference simulator after
    every move.
    """
    rng = random.Random(20260806)
    cases = 0
    mismatches = 0
    while cases < 200:
        instance = random_instance(rng)
        threads = rng.randint(1, 4)
        fast = FastSimulator(instance, compile_threads=threads)
        schedule = random_schedule(instance, rng)
        fast.bind(schedule)
        tasks = list(schedule)
        for _ in range(6):
            proposal = _mutate(instance, tasks, rng)
            if proposal is None:
                continue
            span = fast.propose(proposal)
            ref = simulate(instance, Schedule(tuple(proposal)), compile_threads=threads)
            if span != ref.makespan:
                mismatches += 1
            if rng.random() < 0.7:  # accept: commit and re-check baseline
                committed = fast.commit()
                if committed != ref.makespan:
                    mismatches += 1
                full = fast.result(record_timeline=True)
                ref_full = simulate(
                    instance,
                    Schedule(tuple(proposal)),
                    compile_threads=threads,
                    record_timeline=True,
                )
                if (full.makespan, full.total_bubble_time, full.call_timings) != (
                    ref_full.makespan,
                    ref_full.total_bubble_time,
                    ref_full.call_timings,
                ):
                    mismatches += 1
                tasks = proposal
        cases += 1
    assert cases >= 200
    assert mismatches == 0


@pytest.mark.parametrize("move_kind", [0, 1, 2, 3])
def test_each_move_kind_incrementally_exact(move_kind):
    """Force every move kind (swap / shift / toggle-high / relevel) and
    check the incremental path after each."""

    class ForcedRng(random.Random):
        def randrange(self, *args, **kwargs):  # first call picks the move
            if not self.__dict__.get("_moved"):
                self.__dict__["_moved"] = True
                return move_kind
            return super().randrange(*args, **kwargs)

    outer = random.Random(1000 + move_kind)
    applied = 0
    attempts = 0
    while applied < 25 and attempts < 400:
        attempts += 1
        instance = random_instance(outer)
        schedule = random_schedule(instance, outer)
        rng = ForcedRng(outer.randrange(1 << 30))
        proposal = _propose(instance, list(schedule), rng)
        if proposal is None:
            continue
        fast = FastSimulator(instance)
        fast.bind(schedule)
        span = fast.propose(proposal)
        ref = simulate(instance, Schedule(tuple(proposal)))
        assert span == ref.makespan
        assert fast.commit() == ref.makespan
        applied += 1
    assert applied == 25


def test_preview_does_not_commit():
    rng = random.Random(3)
    instance = random_instance(rng)
    schedule = random_schedule(instance, rng)
    fast = FastSimulator(instance)
    base = fast.bind(schedule)
    proposal = None
    while proposal is None:
        proposal = _propose(instance, list(schedule), rng)
    ref = simulate(instance, Schedule(tuple(proposal)), record_timeline=True)
    assert_results_equal(fast.preview(proposal, record_timeline=True), ref)
    # preview disarms commit and leaves the baseline untouched
    assert fast.baseline_makespan == base
    assert fast.baseline_tasks == tuple(schedule)
    with pytest.raises(RuntimeError):
        fast.commit()


def test_propose_cutoff_returns_inf_when_worse():
    import math

    rng = random.Random(11)
    seen_inf = 0
    for _ in range(200):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        fast = FastSimulator(instance)
        base = fast.bind(schedule)
        proposal = _propose(instance, list(schedule), rng)
        if proposal is None:
            continue
        span = fast.propose(proposal, cutoff=base)
        true_span = simulate(instance, Schedule(tuple(proposal))).makespan
        if true_span <= base:
            assert span == true_span
        else:
            assert span == true_span or math.isinf(span)
            if math.isinf(span):
                seen_inf += 1
    assert seen_inf > 0  # the early exit actually fires


def test_trace_stats_matches_iar_helper():
    from repro.core.iar import _trace_stats

    rng = random.Random(5)
    for _ in range(30):
        instance = random_instance(rng)
        schedule = random_schedule(instance, rng)
        result = simulate(instance, schedule, record_timeline=True)
        t = result.makespan * rng.random()
        fast = FastSimulator(instance)
        assert fast.trace_stats(schedule, before_time=t, after_time=t) == _trace_stats(
            instance, schedule, before_time=t, after_time=t
        )


# ---------------------------------------------------------------------------
# the fast engine inside local search
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("temperature", [0.0, 0.05])
@pytest.mark.parametrize("threads", [1, 2])
def test_localsearch_engines_walk_identical_trajectories(temperature, threads):
    rng = random.Random(42 + threads)
    instance = random_instance(rng)
    schedule = random_schedule(instance, rng)
    fast_sched, fast_stats = improve_schedule(
        instance,
        schedule,
        iterations=120,
        seed=9,
        temperature=temperature,
        compile_threads=threads,
        engine="fast",
    )
    ref_sched, ref_stats = improve_schedule(
        instance,
        schedule,
        iterations=120,
        seed=9,
        temperature=temperature,
        compile_threads=threads,
        engine="reference",
    )
    assert tuple(fast_sched) == tuple(ref_sched)
    assert fast_stats == ref_stats


def test_localsearch_rejects_unknown_engine():
    prof = {"f0": FunctionProfile("f0", (1.0,), (1.0,))}
    inst = OCSPInstance(prof, ("f0",), name="tiny")
    with pytest.raises(ValueError):
        improve_schedule(inst, Schedule.of(("f0", 0)), iterations=1, engine="nope")
