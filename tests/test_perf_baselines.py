"""Assertions over the *committed* benchmark baselines.

The committed ``BENCH_*.json`` files are the repo's perf contract: the
bench comparator gates wall time against them, and this module gates
their *content* — the dual-signal invariants that must hold for the
engine-equivalence story to be true:

* **counter identity across engines** — ``fastsim_evaluate`` /
  ``vecsim_evaluate`` and ``core_simulate`` / ``core_simulate_vector``
  measure the same workload through different engines, so their work
  counters must match key for key, value for value;
* **the vector speedup claim** — at scale 1.0 the vector engine's
  median must beat both the reference and the fast engine by >= 10x
  (ROADMAP's "raw speed" item, proven by the committed numbers rather
  than by a README sentence);
* **the priority-queue dispatch fix** — single-threaded co-simulation
  never takes the reheapify slow path, so the committed
  ``priorityqueue_hotness`` baseline must not contain a
  ``priorityqueue.reheapifies`` counter at all.

Regenerate after an intended change with::

    python -m repro bench run --suite quick --update-baselines
    python -m repro bench run --suite speedup --scale 0.1 \
        --update-baselines --baseline-dir benchmarks/baselines/scale-0.1
    python -m repro bench run --suite speedup --scale 1.0 \
        --update-baselines --baseline-dir benchmarks/baselines/scale-1.0
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

BASELINES = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"

# (directory, expected recorded scale)
DIRS = [
    (BASELINES, 0.01),
    (BASELINES / "scale-0.1", 0.1),
    (BASELINES / "scale-1.0", 1.0),
]

# Engine twins: same workload and schedule, different engine — the
# committed counters must be identical.
TWINS = [
    ("core_simulate", "core_simulate_vector"),
    ("fastsim_evaluate", "vecsim_evaluate"),
]

SPEEDUP_FLOOR = 10.0


def _load(directory: Path, name: str) -> dict:
    path = directory / f"BENCH_{name}.json"
    assert path.is_file(), f"missing committed baseline {path}"
    return json.loads(path.read_text())


def test_baseline_directories_exist():
    for directory, _scale in DIRS:
        assert directory.is_dir(), f"missing baseline directory {directory}"


@pytest.mark.parametrize(
    "directory,scale", DIRS, ids=[str(s) for _d, s in DIRS]
)
@pytest.mark.parametrize("slow,fast", TWINS, ids=[t[0] for t in TWINS])
def test_engine_twins_have_identical_counters(directory, scale, slow, fast):
    """The committed counters prove counter identity across engines."""
    slow_doc = _load(directory, slow)
    fast_doc = _load(directory, fast)
    assert slow_doc["scale"] == scale
    assert fast_doc["scale"] == scale
    assert slow_doc["counters"] == fast_doc["counters"], (
        f"{slow} and {fast} counters diverge at scale {scale}"
    )
    assert slow_doc["counters"], f"{slow} baseline records no counters"


@pytest.mark.parametrize("slow,fast", TWINS, ids=[t[0] for t in TWINS])
def test_vector_speedup_at_full_scale(slow, fast):
    """The committed scale-1.0 medians prove the >= 10x vector speedup."""
    directory = BASELINES / "scale-1.0"
    slow_median = _load(directory, slow)["timing"]["median_s"]
    fast_median = _load(directory, fast)["timing"]["median_s"]
    ratio = slow_median / fast_median
    assert ratio >= SPEEDUP_FLOOR, (
        f"{slow} / {fast} speedup regressed: {ratio:.1f}x < "
        f"{SPEEDUP_FLOOR:.0f}x at scale 1.0"
    )


def test_priorityqueue_baseline_has_no_reheapifies():
    """Single-thread dispatch never reheapifies: the two-heap queue only
    pays a heapify on the multi-thread slow path, so the counter must be
    absent from the committed single-thread benchmark entirely."""
    counters = _load(BASELINES, "priorityqueue_hotness")["counters"]
    assert "priorityqueue.reheapifies" not in counters
    assert counters.get("priorityqueue.dispatched", 0) > 0
