"""Degradation-curve sweeps and the ``repro faults sweep`` CLI."""

import json

import pytest

from repro.analysis.experiments import PARALLEL_DRIVERS, scheme_comparison
from repro.cli import main
from repro.faults import DEFAULT_RATES, FaultSpecError, fault_sweep_rows, degradation_curves
from repro.faults.sweep import SERIES
from repro.vm.costbenefit import EstimatedModel
from repro.workloads import WorkloadSpec, generate


@pytest.fixture(scope="module")
def suite():
    return {
        name: generate(
            WorkloadSpec(
                name=name, num_functions=6, num_calls=120, num_levels=3
            ),
            seed=seed,
        )
        for name, seed in (("alpha", 1), ("beta", 2))
    }


class TestSweepRows:
    def test_row_shape_and_order(self, suite):
        rows = fault_sweep_rows(suite, rates=(0.0, 0.3))
        assert len(rows) == 4
        assert [(r["benchmark"], r["fault_rate"]) for r in rows] == [
            ("alpha", 0.0), ("alpha", 0.3), ("beta", 0.0), ("beta", 0.3),
        ]
        for row in rows:
            assert row["dimension"] == "compile_fail"
            for key in SERIES:
                assert key in row
            assert "faults" in row

    def test_zero_rate_bitwise_equals_clean(self, suite):
        rows = fault_sweep_rows(suite, rates=(0.0,), model_seed=0)
        for row in rows:
            clean = scheme_comparison(
                suite[row["benchmark"]],
                model_factory=lambda inst: EstimatedModel(inst, seed=0),
            )
            for key in SERIES:
                assert row[key] == clean[key]
            assert row["faults"]["compile_failures"] == 0

    def test_deterministic(self, suite):
        runs = [
            fault_sweep_rows(suite, spec="seed=7", rates=(0.0, 0.2, 0.4))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_degradation_is_monotone_ish(self, suite):
        # Not a theorem, but at these rates the faulted points must sit
        # at or above the clean origin for the schemes faults touch.
        rows = fault_sweep_rows(suite, rates=(0.0, 0.4))
        by_bench = {}
        for row in rows:
            by_bench.setdefault(row["benchmark"], []).append(row)
        for points in by_bench.values():
            origin, faulted = points
            assert faulted["faults"]["compile_failures"] > 0
            assert faulted["default"] >= 1.0
            assert origin["lower_bound"] == faulted["lower_bound"] == 1.0

    @pytest.mark.parametrize("dimension", ["stall", "mispredict", "ticks"])
    def test_other_dimensions(self, suite, dimension):
        rows = fault_sweep_rows(
            suite, rates=(0.0, 0.5), dimension=dimension
        )
        assert all(row["dimension"] == dimension for row in rows)
        faulted = [row for row in rows if row["fault_rate"] == 0.5]
        if dimension == "stall":
            assert any(r["faults"]["stalls"] > 0 for r in faulted)
        elif dimension == "ticks":
            assert any(
                r["faults"]["ticks_dropped"] + r["faults"]["ticks_duplicated"]
                > 0
                for r in faulted
            )

    def test_unknown_dimension(self, suite):
        with pytest.raises(FaultSpecError, match="dimension"):
            fault_sweep_rows(suite, dimension="entropy")

    def test_default_rates_start_at_zero(self):
        assert DEFAULT_RATES[0] == 0.0
        assert list(DEFAULT_RATES) == sorted(DEFAULT_RATES)


class TestCurves:
    def test_geomean_per_rate(self, suite):
        rows = fault_sweep_rows(suite, rates=(0.0, 0.3))
        curves = degradation_curves(rows)
        assert [c["fault_rate"] for c in curves] == [0.0, 0.3]
        for point in curves:
            assert point["lower_bound"] == pytest.approx(1.0)
            for key in SERIES:
                assert point[key] is not None

    def test_single_benchmark_passthrough(self, suite):
        rows = fault_sweep_rows(
            {"alpha": suite["alpha"]}, rates=(0.2,)
        )
        curves = degradation_curves(rows)
        assert curves[0]["iar"] == pytest.approx(rows[0]["iar"])


class TestDriverRegistration:
    def test_faults_sweep_is_a_parallel_driver(self):
        assert "faults_sweep" in PARALLEL_DRIVERS


class TestCLI:
    def _sweep(self, tmp_path, name):
        out = tmp_path / f"{name}.json"
        code = main(
            [
                "faults", "sweep",
                "--scale", "0.002",
                "--rates", "0,0.3",
                "--seed", "0",
                "--json-out", str(out),
            ]
        )
        assert code == 0
        return out

    def test_json_out_deterministic(self, tmp_path, capsys):
        first = self._sweep(tmp_path, "a").read_bytes()
        second = self._sweep(tmp_path, "b").read_bytes()
        assert first == second  # the acceptance criterion, verbatim
        doc = json.loads(first)
        assert doc["dimension"] == "compile_fail"
        assert doc["rates"] == [0.0, 0.3]
        assert len(doc["curves"]) == 2
        assert doc["curves"][0]["fault_rate"] == 0.0
        out = capsys.readouterr().out
        assert "degradation vs compile_fail" in out

    def test_rejects_bad_rates(self, capsys):
        code = main(["faults", "sweep", "--scale", "0.002", "--rates", "zero"])
        assert code == 2
        assert "repro: error: fault spec:" in capsys.readouterr().err

    def test_rejects_out_of_range_rate(self, capsys):
        code = main(["faults", "sweep", "--scale", "0.002", "--rates", "0,2"])
        assert code == 2
        assert "fault spec" in capsys.readouterr().err

    def test_rejects_bad_spec(self, capsys):
        code = main(
            ["faults", "sweep", "--scale", "0.002", "--spec", "warp=1"]
        )
        assert code == 2
        assert "unknown key" in capsys.readouterr().err
