"""Property-based tests (hypothesis) for the core invariants.

Strategies build random-but-valid OCSP instances (monotone cost tables,
arbitrary call sequences) and random valid schedules, then check the
structural invariants the rest of the library relies on.
"""

from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CompileTask,
    FunctionProfile,
    OCSPInstance,
    Schedule,
    iar_schedule,
    lower_bound,
    optimal_schedule,
    simulate,
    simulate_single_core,
)
from repro.core.singlecore import (
    single_core_optimal_makespan,
    single_core_optimal_schedule,
)
from repro.workloads import traces

times = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)


@st.composite
def profiles_strategy(draw, max_functions=4, max_levels=3):
    n_funcs = draw(st.integers(min_value=1, max_value=max_functions))
    profiles: Dict[str, FunctionProfile] = {}
    for i in range(n_funcs):
        n_levels = draw(st.integers(min_value=1, max_value=max_levels))
        compile_times = sorted(draw(st.lists(times, min_size=n_levels, max_size=n_levels)))
        exec_times = sorted(
            draw(st.lists(times, min_size=n_levels, max_size=n_levels)),
            reverse=True,
        )
        name = f"f{i}"
        profiles[name] = FunctionProfile(name, tuple(compile_times), tuple(exec_times))
    return profiles


@st.composite
def instances(draw, max_functions=4, max_levels=3, max_calls=12):
    profiles = draw(profiles_strategy(max_functions, max_levels))
    names = sorted(profiles)
    calls = draw(
        st.lists(st.sampled_from(names), min_size=1, max_size=max_calls)
    )
    return OCSPInstance(profiles, tuple(calls), name="prop")


@st.composite
def instance_and_schedule(draw):
    inst = draw(instances())
    tasks: List[CompileTask] = []
    last: Dict[str, int] = {}
    # Cover every called function, then sprinkle random recompiles.
    for fname in inst.called_functions:
        level = draw(
            st.integers(min_value=0, max_value=inst.max_level(fname))
        )
        tasks.append(CompileTask(fname, level))
        last[fname] = level
    extra = draw(st.integers(min_value=0, max_value=3))
    for _ in range(extra):
        candidates = [
            f for f in inst.called_functions if last[f] < inst.max_level(f)
        ]
        if not candidates:
            break
        fname = draw(st.sampled_from(sorted(candidates)))
        level = draw(
            st.integers(min_value=last[fname] + 1, max_value=inst.max_level(fname))
        )
        tasks.append(CompileTask(fname, level))
        last[fname] = level
    order = draw(st.permutations(range(len(tasks))))
    # Keep per-function relative order (levels must increase).
    by_func: Dict[str, List[CompileTask]] = {}
    for t in tasks:
        by_func.setdefault(t.function, []).append(t)
    cursor = {f: 0 for f in by_func}
    shuffled: List[CompileTask] = []
    for idx in order:
        f = tasks[idx].function
        shuffled.append(by_func[f][cursor[f]])
        cursor[f] += 1
    return inst, Schedule(tuple(shuffled))


@settings(max_examples=120, deadline=None)
@given(instance_and_schedule())
def test_makespan_decomposition(data):
    """makespan == total exec + total bubbles (one execution thread)."""
    inst, sched = data
    result = simulate(inst, sched)
    assert result.makespan == pytest.approx(
        result.total_exec_time + result.total_bubble_time
    )


@settings(max_examples=120, deadline=None)
@given(instance_and_schedule())
def test_makespan_at_least_lower_bound(data):
    inst, sched = data
    result = simulate(inst, sched)
    # The compile-aware bound lower-bounds the OPTIMUM, not every
    # schedule; only the plain exec bound must hold universally.
    assert result.makespan >= lower_bound(inst) - 1e-9


@settings(max_examples=100, deadline=None)
@given(instance_and_schedule(), st.integers(min_value=2, max_value=4))
def test_more_compile_threads_never_hurt_without_recompiles(data, threads):
    """Thread-count monotonicity holds for single-compile-per-function
    schedules: extra threads only make code available earlier, and with
    one version per function "earlier" can only shrink bubbles.

    It does NOT hold for general schedules — see
    ``test_thread_anomaly_with_recompiles`` below.
    """
    inst, sched = data
    seen = set()
    single_tasks = []
    for task in sched:
        if task.function not in seen:
            seen.add(task.function)
            single_tasks.append(task)
    single = Schedule(tuple(single_tasks))
    one = simulate(inst, single).makespan
    many = simulate(inst, single, compile_threads=threads).makespan
    assert many <= one + 1e-9


def test_thread_anomaly_with_recompiles():
    """A Graham-style anomaly, found by hypothesis: adding a compiler
    thread can INCREASE the make-span.  With two threads, f1's compile
    no longer queues behind f0's slow recompile, execution starts
    earlier — and f0's call now catches the slow level-0 version that a
    later start would have skipped."""
    profiles = {
        "f0": FunctionProfile("f0", (1.0, 4.0), (6.0, 1.0)),
        "f1": FunctionProfile("f1", (1.0,), (1.0,)),
    }
    inst = OCSPInstance(profiles, ("f1", "f0"), name="anomaly")
    sched = Schedule.of(("f0", 0), ("f0", 1), ("f1", 0))
    one = simulate(inst, sched).makespan
    two = simulate(inst, sched, compile_threads=2).makespan
    assert one == 8.0   # f1 waits for the whole queue; f0 runs at L1
    assert two == 9.0   # f1 ready at 2, f0 starts at 3 on L0 code
    assert two > one


@settings(max_examples=80, deadline=None)
@given(instance_and_schedule())
def test_calls_at_level_counts_every_call(data):
    inst, sched = data
    result = simulate(inst, sched)
    assert sum(result.calls_at_level.values()) == inst.num_calls


@settings(max_examples=60, deadline=None)
@given(instances())
def test_iar_produces_valid_schedule(inst):
    sched = iar_schedule(inst)
    sched.validate(inst)


@settings(max_examples=60, deadline=None)
@given(instances())
def test_iar_never_beats_lower_bound(inst):
    span = simulate(inst, iar_schedule(inst), validate=False).makespan
    assert span >= lower_bound(inst) - 1e-9


@settings(max_examples=30, deadline=None)
@given(instances(max_functions=3, max_levels=2, max_calls=8))
def test_iar_never_beats_true_optimum(inst):
    opt = optimal_schedule(inst)
    span = simulate(inst, iar_schedule(inst), validate=False).makespan
    assert span >= opt.makespan - 1e-9


@settings(max_examples=30, deadline=None)
@given(instances(max_functions=3, max_levels=2, max_calls=8))
def test_astar_matches_bruteforce(inst):
    from repro.core import astar_schedule

    exact = optimal_schedule(inst)
    astar = astar_schedule(inst)
    assert astar.makespan == pytest.approx(exact.makespan)


@settings(max_examples=60, deadline=None)
@given(instance_and_schedule())
def test_single_core_theorem_lower_bounds_all_schedules(data):
    """Theorem 1's formula is <= the single-core make-span of ANY
    valid schedule."""
    inst, sched = data
    formula = single_core_optimal_makespan(inst)
    assert simulate_single_core(inst, sched).makespan >= formula - 1e-9


@settings(max_examples=60, deadline=None)
@given(instances())
def test_single_core_optimal_schedule_achieves_formula(inst):
    sched = single_core_optimal_schedule(inst)
    span = simulate_single_core(inst, sched).makespan
    assert span == pytest.approx(single_core_optimal_makespan(inst))


@settings(max_examples=60, deadline=None)
@given(instances())
def test_trace_roundtrip(inst):
    back = traces.from_json(traces.to_json(inst))
    assert back.calls == inst.calls
    assert back.profiles == dict(inst.profiles)


@settings(max_examples=60, deadline=None)
@given(instance_and_schedule())
def test_useless_tail_never_extends_makespan(data):
    inst, sched = data
    base = simulate(inst, sched).makespan
    fname = inst.called_functions[0]
    top = inst.max_level(fname)
    if (sched.highest_level_of(fname) or 0) >= top:
        return
    extended = Schedule(sched.tasks + (CompileTask(fname, top),))
    assert simulate(inst, extended).makespan <= base + 1e-9


def _reference_simulate(inst, sched, compile_threads=1):
    """Naive O(N*T) re-implementation of the make-span semantics, used
    to differential-test the optimized simulator."""
    # Compile task timing: each task goes to the earliest-free thread.
    free = [0.0] * compile_threads
    events = []  # (finish, level) per task, grouped later
    for task in sched:
        tid = min(range(compile_threads), key=lambda i: free[i])
        start = free[tid]
        finish = start + inst.profiles[task.function].compile_times[task.level]
        free[tid] = finish
        events.append((task.function, finish, task.level))
    t = 0.0
    bubbles = 0.0
    exec_total = 0.0
    for fname in inst.calls:
        mine = [(f, lvl) for name, f, lvl in events if name == fname]
        earliest = min(f for f, _lvl in mine)
        start = max(t, earliest)
        bubbles += start - t
        best = max(lvl for f, lvl in mine if f <= start)
        e = inst.profiles[fname].exec_times[best]
        exec_total += e
        t = start + e
    return t, bubbles, exec_total


@settings(max_examples=80, deadline=None)
@given(instance_and_schedule(), st.integers(min_value=1, max_value=3))
def test_simulator_matches_reference(data, threads):
    """Differential test: the optimized simulator agrees with a naive
    re-implementation of the semantics, for any thread count."""
    inst, sched = data
    fast = simulate(inst, sched, compile_threads=threads)
    span, bubbles, exec_total = _reference_simulate(inst, sched, threads)
    assert fast.makespan == pytest.approx(span)
    assert fast.total_bubble_time == pytest.approx(bubbles)
    assert fast.total_exec_time == pytest.approx(exec_total)


@settings(max_examples=40, deadline=None)
@given(instances(max_functions=4, max_levels=3, max_calls=14))
def test_reactive_runtimes_produce_valid_schedules(inst):
    """Whatever the workload, the Jikes/V8/tiered co-simulations emit
    legal OCSP schedules and respect the make-span decomposition."""
    from repro.vm.hotspot import run_tiered
    from repro.vm.jikes import run_jikes
    from repro.vm.v8 import run_v8

    for result in (
        run_jikes(inst, sample_period=1.0),
        run_v8(inst),
        run_tiered(inst, thresholds=(1, 3)),
    ):
        result.schedule.validate(inst)
        assert result.makespan >= lower_bound(inst) - 1e-9
        assert result.makespan == pytest.approx(
            result.total_exec_time + result.total_bubble_time
        )


@settings(max_examples=40, deadline=None)
@given(instances())
def test_diagnose_decomposition_is_exact(inst):
    from repro.analysis.diagnose import diagnose

    sched = iar_schedule(inst)
    d = diagnose(inst, sched)
    assert d.makespan == pytest.approx(
        d.lower_bound
        + d.bubbles
        + d.excess_before_upgrade
        + d.excess_never_upgraded
    )


@settings(max_examples=40, deadline=None)
@given(instances(), st.integers(min_value=1, max_value=400))
def test_localsearch_never_worse(inst, iterations):
    from repro.core import improve_schedule

    start = iar_schedule(inst)
    improved, stats = improve_schedule(inst, start, iterations=iterations, seed=1)
    improved.validate(inst)
    assert stats.final_makespan <= stats.initial_makespan + 1e-9


@settings(max_examples=60, deadline=None)
@given(instance_and_schedule())
def test_osr_never_slower_than_call_start_rule(data):
    """On-stack replacement can only help: with zero switch cost its
    make-span is bounded by the call-start-rule simulator's."""
    from repro.core.osr import simulate_osr

    inst, sched = data
    plain = simulate(inst, sched).makespan
    osr = simulate_osr(inst, sched).makespan
    assert osr <= plain + 1e-6
    assert osr >= lower_bound(inst) - 1e-9


@settings(max_examples=60, deadline=None)
@given(instances(max_functions=3, max_levels=2, max_calls=8))
def test_warmup_bound_brackets_the_optimum(inst):
    """exec-LB <= warmup-LB <= true optimum, on random tiny instances."""
    from repro.core import warmup_aware_lower_bound

    opt = optimal_schedule(inst)
    warm = warmup_aware_lower_bound(inst)
    assert lower_bound(inst) <= warm + 1e-9
    assert warm <= opt.makespan + 1e-9
