"""Tests for the sensitivity sweep and CSV export."""

import pytest

from repro.analysis.export import rows_to_csv, save_csv
from repro.analysis.sensitivity import DEFAULT_BASE_SPEC, sweep_parameter
from dataclasses import replace

SMALL = replace(DEFAULT_BASE_SPEC, num_functions=30, num_calls=4000)


class TestSweep:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError):
            sweep_parameter("warp_factor", [1, 2])

    def test_sweep_zipf(self):
        rows = sweep_parameter("zipf_s", (1.1, 1.6), base_spec=SMALL)
        assert [r["zipf_s"] for r in rows] == [1.1, 1.6]
        for row in rows:
            assert row["iar"] >= 1.0
            assert row["scheduling_payoff"] > 0

    def test_compile_cost_drives_payoff(self):
        """With near-free compiles, scheduling cannot matter much; with
        expensive compiles it must."""
        rows = sweep_parameter(
            "base_compile_us", (0.01, 50.0), base_spec=SMALL
        )
        cheap, costly = rows
        assert costly["scheduling_payoff"] >= cheap["scheduling_payoff"] - 0.02

    def test_deterministic(self):
        a = sweep_parameter("zipf_s", (1.3,), base_spec=SMALL)
        b = sweep_parameter("zipf_s", (1.3,), base_spec=SMALL)
        assert a == b


class TestCSV:
    ROWS = [
        {"benchmark": "x", "iar": 1.1},
        {"benchmark": "y", "iar": 1.2, "extra": "e"},
    ]

    def test_roundtrip_columns(self):
        text = rows_to_csv(self.ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "benchmark,iar,extra"
        assert lines[1] == "x,1.1,"
        assert lines[2] == "y,1.2,e"

    def test_column_selection(self):
        text = rows_to_csv(self.ROWS, columns=["iar"])
        assert text.strip().splitlines()[0] == "iar"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv([])

    def test_save(self, tmp_path):
        path = tmp_path / "out.csv"
        save_csv(self.ROWS, path)
        assert path.read_text().startswith("benchmark,iar")
