"""Tests for the additional baseline schedulers."""

import pytest

from repro.core import lower_bound, simulate
from repro.core.baselines import (
    greedy_budget_schedule,
    hotness_first_schedule,
    ondemand_promotion_schedule,
    random_schedule,
)


ALL_BASELINES = [
    lambda inst: ondemand_promotion_schedule(inst),
    lambda inst: hotness_first_schedule(inst),
    lambda inst: greedy_budget_schedule(inst),
    lambda inst: random_schedule(inst, seed=3),
]


class TestValidity:
    @pytest.mark.parametrize("builder", ALL_BASELINES)
    def test_valid_on_synthetic(self, builder, small_synthetic):
        builder(small_synthetic).validate(small_synthetic)

    @pytest.mark.parametrize("builder", ALL_BASELINES)
    def test_valid_on_fig2(self, builder, fig2_instance):
        builder(fig2_instance).validate(fig2_instance)

    @pytest.mark.parametrize("builder", ALL_BASELINES)
    def test_above_lower_bound(self, builder, small_synthetic):
        span = simulate(
            small_synthetic, builder(small_synthetic), validate=False
        ).makespan
        assert span >= lower_bound(small_synthetic) - 1e-9


class TestOndemandPromotion:
    def test_promotion_order_follows_kth_call(self, two_function_instance):
        # cold called once (never promoted), hot 20 times (promoted at
        # its 2nd call).
        sched = ondemand_promotion_schedule(two_function_instance)
        tasks = [(t.function, t.level) for t in sched]
        assert tasks[:2] == [("cold", 0), ("hot", 0)]
        assert ("hot", 1) in tasks
        assert all(f != "cold" or lvl == 0 for f, lvl in tasks)

    def test_promote_after_larger_than_counts(self, two_function_instance):
        sched = ondemand_promotion_schedule(two_function_instance, promote_after=100)
        assert all(t.level == 0 for t in sched)

    def test_bad_parameter(self, two_function_instance):
        with pytest.raises(ValueError):
            ondemand_promotion_schedule(two_function_instance, promote_after=0)

    def test_matches_v8_ordering_on_interleaved_calls(self):
        from repro.core import FunctionProfile, OCSPInstance

        profiles = {
            "a": FunctionProfile("a", (1.0, 2.0), (3.0, 1.0)),
            "b": FunctionProfile("b", (1.0, 2.0), (3.0, 1.0)),
        }
        inst = OCSPInstance(profiles, ("a", "b", "b", "a"), name="order")
        sched = ondemand_promotion_schedule(inst)
        # b reaches its 2nd call (index 2) before a (index 3).
        promos = [t.function for t in sched if t.level == 1]
        assert promos == ["b", "a"]


class TestHotnessFirst:
    def test_hottest_promoted_first(self, small_synthetic):
        sched = hotness_first_schedule(small_synthetic)
        promos = [t.function for t in sched if t.level > 0]
        counts = [small_synthetic.call_count(f) for f in promos]
        assert counts == sorted(counts, reverse=True)

    def test_unprofitable_functions_skipped(self, two_function_instance):
        sched = hotness_first_schedule(two_function_instance)
        assert sched.highest_level_of("cold") == 0


class TestGreedyBudget:
    def test_zero_budget_is_base_level(self, small_synthetic):
        sched = greedy_budget_schedule(small_synthetic, budget_fraction=0.0)
        assert all(t.level == 0 for t in sched)

    def test_budget_monotone(self, small_synthetic):
        small = greedy_budget_schedule(small_synthetic, budget_fraction=0.1)
        large = greedy_budget_schedule(small_synthetic, budget_fraction=2.0)
        n_small = sum(1 for t in small if t.level > 0)
        n_large = sum(1 for t in large if t.level > 0)
        assert n_large >= n_small

    def test_budget_respected(self, small_synthetic):
        fraction = 0.2
        sched = greedy_budget_schedule(small_synthetic, budget_fraction=fraction)
        total_exec0 = sum(
            small_synthetic.profiles[f].exec_times[0]
            for f in small_synthetic.calls
        )
        spent = sum(
            small_synthetic.profiles[t.function].compile_times[t.level]
            for t in sched
            if t.level > 0
        )
        assert spent <= fraction * total_exec0 + 1e-9

    def test_negative_budget_rejected(self, small_synthetic):
        with pytest.raises(ValueError):
            greedy_budget_schedule(small_synthetic, budget_fraction=-0.5)


class TestRandomSchedule:
    def test_deterministic_per_seed(self, small_synthetic):
        assert random_schedule(small_synthetic, seed=1) == random_schedule(
            small_synthetic, seed=1
        )

    def test_seed_varies(self, small_synthetic):
        assert random_schedule(small_synthetic, seed=1) != random_schedule(
            small_synthetic, seed=2
        )
