"""Tests for cross-run call-sequence prediction (Section 8)."""

import pytest

from repro.core import FunctionProfile, MarkovPredictor, OCSPInstance, cross_run_iar
from repro.workloads import WorkloadSpec, generate


class TestMarkovPredictor:
    def test_fit_required(self):
        with pytest.raises(RuntimeError):
            MarkovPredictor().predict(5)
        with pytest.raises(RuntimeError):
            MarkovPredictor().accuracy(["a"])

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            MarkovPredictor().fit([])

    def test_bad_order(self):
        with pytest.raises(ValueError):
            MarkovPredictor(order=0)

    def test_learns_a_cycle(self):
        seq = ["a", "b", "c"] * 50
        predictor = MarkovPredictor(order=2).fit(seq)
        predicted = predictor.predict(9, prefix=["a", "b"])
        assert predicted == ("c", "a", "b", "c", "a", "b", "c", "a", "b")

    def test_perfect_accuracy_on_training_cycle(self):
        seq = ["x", "y"] * 40
        predictor = MarkovPredictor(order=1).fit(seq)
        assert predictor.accuracy(seq) > 0.95

    def test_backoff_for_unseen_context(self):
        seq = ["a", "a", "b"] * 30
        predictor = MarkovPredictor(order=2).fit(seq)
        # Context never seen: falls back to shorter contexts / global.
        out = predictor.predict(1, prefix=["zzz", "qqq"])
        assert out[0] in {"a", "b"}

    def test_prediction_emits_requested_length(self):
        predictor = MarkovPredictor().fit(["a", "b"] * 10)
        assert len(predictor.predict(17)) == 17


class TestCrossRunIAR:
    def _runs(self):
        from repro.core import perturb_sequence

        spec = WorkloadSpec(
            name="xrun",
            num_functions=25,
            num_calls=4000,
            num_levels=2,
            base_compile_us=40.0,
            mean_exec_us=2.0,
            zipf_s=1.3,
        )
        # Two runs of the "same program on different input": run B is a
        # perturbed replay of run A (same hot set, locally reshuffled).
        run_a = generate(spec, seed=31)
        run_b = perturb_sequence(run_a, error_rate=0.25, seed=99)
        run_b = OCSPInstance(run_a.profiles, run_b.calls, name="xrun-b")
        return run_a, run_b

    def test_cross_run_planning_beats_nothing_blows_up(self):
        run_a, run_b = self._runs()
        result = cross_run_iar(run_a, run_b)
        assert result.makespan >= result.lower_bound
        assert 0.0 <= result.prediction_accuracy <= 1.0

    def test_same_run_prediction_is_nearly_oracle(self):
        run_a, _ = self._runs()
        result = cross_run_iar(run_a, run_a)
        assert result.degradation < 1.25

    def test_cross_run_degradation_is_bounded(self):
        run_a, run_b = self._runs()
        result = cross_run_iar(run_a, run_b)
        # The two runs share hotness structure, so the planned schedule
        # must stay in the oracle's neighbourhood.
        assert result.degradation < 1.6

    def test_profile_mismatch_rejected(self):
        run_a, run_b = self._runs()
        tampered_profiles = dict(run_b.profiles)
        fname = next(iter(tampered_profiles))
        prof = tampered_profiles[fname]
        tampered_profiles[fname] = FunctionProfile(
            fname, tuple(c * 2 for c in prof.compile_times), prof.exec_times
        )
        tampered = OCSPInstance(tampered_profiles, run_b.calls, name="bad")
        with pytest.raises(ValueError, match="mismatch"):
            cross_run_iar(run_a, tampered)

    def test_unknown_functions_in_actual_get_fallback(self):
        run_a, run_b = self._runs()
        extra = dict(run_b.profiles)
        extra["newcomer"] = FunctionProfile("newcomer", (5.0, 50.0), (4.0, 1.0))
        actual = OCSPInstance(
            extra, run_b.calls + ("newcomer",) * 5, name="with-new"
        )
        result = cross_run_iar(run_a, actual)
        assert result.makespan >= result.lower_bound
