"""Bounded-memory regression tests for the streaming trace exporters.

``write_chrome_trace`` and ``write_jsonl`` must hold one serialized
record at a time — not a second materialized copy of the event list —
so exporting a full-length run cannot double peak memory.  The cap here
is measured with ``tracemalloc`` against a ~30k-event trace: the sort
keeps event *references* (one pointer list), so allowed growth is a few
hundred bytes per event, far under the ~1 KiB a materialized record
dict costs.
"""

import json
import tracemalloc

import pytest

from repro.observability import (
    Tracer,
    iter_chrome_records,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

EVENTS = 30_000
# Reference list for the sort + bookkeeping; a materialized record list
# for this trace costs >15 MB, so the cap cleanly separates the two.
MEMORY_CAP_BYTES = 3 * 1024 * 1024


def _big_trace(events: int = EVENTS) -> Tracer:
    tracer = Tracer()
    t = 0.0
    for i in range(events // 3):
        track = f"proc{i % 4}/lane{i % 7}"
        tracer.begin(f"span{i % 11}", track, t, args={"i": i})
        tracer.end(track, t + 1.0)
        tracer.instant(f"mark{i % 5}", track, t + 0.25)
        tracer.counter(f"ctr{i % 3}", track, t + 0.5, float(i))
        t += 2.0
    return tracer


def _peak_during(fn) -> int:
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        current, _ = tracemalloc.get_traced_memory()
        return peak - current
    finally:
        tracemalloc.stop()


class TestStreamingMemory:
    @pytest.fixture(scope="class")
    def tracer(self):
        return _big_trace()

    def test_write_chrome_trace_is_bounded(self, tracer, tmp_path):
        path = tmp_path / "big.trace.json"
        overhead = _peak_during(lambda: write_chrome_trace(tracer, str(path)))
        assert overhead < MEMORY_CAP_BYTES, (
            f"write_chrome_trace peaked {overhead} bytes over baseline "
            f"(cap {MEMORY_CAP_BYTES}); the exporter is buffering records"
        )

    def test_write_jsonl_is_bounded(self, tracer, tmp_path):
        path = tmp_path / "big.jsonl"
        overhead = _peak_during(lambda: write_jsonl(tracer, str(path)))
        assert overhead < MEMORY_CAP_BYTES

    def test_materialized_trace_would_blow_the_cap(self, tracer):
        # Sanity-check the cap is meaningful: the non-streaming path
        # really does allocate far more than the streaming writers may.
        overhead = _peak_during(lambda: to_chrome_trace(tracer))
        assert overhead > MEMORY_CAP_BYTES


class TestStreamingEquivalence:
    def _small_trace(self) -> Tracer:
        tracer = Tracer()
        tracer.begin("compile", "jit/worker0", 0.0, args={"fn": "hot"})
        tracer.end("jit/worker0", 5.0)
        tracer.instant("osr", "jit/worker0", 6.0)
        tracer.begin("gc", "runtime/gc", 1.0)
        tracer.end("runtime/gc", 2.0)
        tracer.counter("heap", "runtime/gc", 3.0, 10.0)
        return tracer

    def test_iter_matches_materialized(self):
        tracer = self._small_trace()
        assert list(iter_chrome_records(tracer)) == to_chrome_trace(tracer)[
            "traceEvents"
        ]

    def test_streamed_file_matches_materialized_object(self, tmp_path):
        tracer = self._small_trace()
        path = tmp_path / "out.trace.json"
        count = write_chrome_trace(tracer, str(path))
        assert count == len(tracer.events)
        data = json.loads(path.read_text())
        assert data == to_chrome_trace(tracer)

    def test_streamed_file_validates(self, tmp_path):
        tracer = _big_trace(events=300)
        path = tmp_path / "out.trace.json"
        write_chrome_trace(tracer, str(path))
        assert validate_chrome_trace(path.read_text()) == len(tracer.events)
