"""Top-level CLI error handling: structured errors become one-line
``repro: error: ...`` diagnostics with exit code 2; ``--debug`` turns
the traceback back on."""

import pytest

from repro.cli import main
from repro.core.model import ModelError
from repro.core.schedule import ScheduleError
from repro.faults.spec import FaultSpecError


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.json"
    assert main(
        ["generate", "--functions", "5", "--calls", "60", "--seed", "1",
         "-o", str(path)]
    ) == 0
    return path


@pytest.fixture()
def schedule_file(tmp_path, trace_file):
    path = tmp_path / "sched.json"
    assert main(["schedule", str(trace_file), "-o", str(path)]) == 0
    return path


def assert_error_exit(capsys, argv, needle):
    code = main(argv)
    err = capsys.readouterr().err
    assert code == 2, err
    lines = [line for line in err.splitlines() if line]
    assert len(lines) == 1  # one-line diagnostic, no traceback
    assert lines[0].startswith("repro: error: ")
    assert needle in lines[0]


class TestExitCodes:
    def test_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert_error_exit(capsys, ["schedule", str(bad), "-o",
                                   str(tmp_path / "out.json")], "trace:")

    def test_truncated_trace(self, tmp_path, capsys, trace_file):
        bad = tmp_path / "trunc.json"
        bad.write_text(trace_file.read_text()[:40])
        assert_error_exit(capsys, ["evaluate", str(bad), str(bad)], "trace:")

    def test_missing_file(self, tmp_path, capsys):
        assert_error_exit(
            capsys,
            ["schedule", str(tmp_path / "ghost.json"), "-o",
             str(tmp_path / "out.json")],
            "ghost.json",
        )

    def test_corrupt_schedule(self, tmp_path, capsys, trace_file):
        bad = tmp_path / "sched.json"
        bad.write_text('{"version":1,"tasks":[["f0"]]}')
        assert_error_exit(
            capsys, ["evaluate", str(trace_file), str(bad)], "schedule:"
        )

    def test_schedule_for_wrong_trace(self, tmp_path, capsys, trace_file):
        bad = tmp_path / "sched.json"
        bad.write_text('{"version":1,"tasks":[["ghost",0]]}')
        # Caught at load time, not as a KeyError mid-simulation.
        assert_error_exit(
            capsys, ["evaluate", str(trace_file), str(bad)],
            "unknown function",
        )

    def test_bad_fault_spec_on_evaluate(
        self, capsys, trace_file, schedule_file
    ):
        assert_error_exit(
            capsys,
            ["evaluate", str(trace_file), str(schedule_file),
             "--faults", "chaos=1"],
            "fault spec:",
        )

    def test_bad_fault_spec_on_study(self, capsys):
        assert_error_exit(
            capsys,
            ["study", "--figure", "fig5", "--scale", "0.002",
             "--faults", "compile_fail=2"],
            "fault spec:",
        )

    def test_success_still_zero(self, capsys, trace_file, schedule_file):
        assert main(["evaluate", str(trace_file), str(schedule_file)]) == 0
        assert capsys.readouterr().err == ""


class TestDebugFlag:
    def test_debug_reraises_model_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ModelError):
            main(["--debug", "schedule", str(bad), "-o",
                  str(tmp_path / "out.json")])

    def test_debug_reraises_schedule_error(self, tmp_path, trace_file):
        bad = tmp_path / "sched.json"
        bad.write_text("[]")
        with pytest.raises(ScheduleError):
            main(["--debug", "evaluate", str(trace_file), str(bad)])

    def test_debug_reraises_fault_spec_error(self, capsys):
        with pytest.raises(FaultSpecError):
            main(["--debug", "faults", "sweep", "--scale", "0.002",
                  "--spec", "chaos=1"])


class TestFaultyEvaluate:
    def test_evaluate_with_faults_reports_degradation(
        self, capsys, trace_file, schedule_file
    ):
        assert main(
            ["evaluate", str(trace_file), str(schedule_file),
             "--faults", "compile_fail=0.5,seed=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "make-span" in out
        assert "fault" in out

    def test_diagnose_with_faults_attributes_gap(
        self, capsys, trace_file, schedule_file
    ):
        assert main(
            ["diagnose", str(trace_file), str(schedule_file),
             "--faults", "compile_fail=0.5,seed=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "fault" in out
