"""Tests for synthetic workload generation and the DaCapo presets."""

import pytest

from repro.workloads import WorkloadSpec, generate
from repro.workloads.dacapo import (
    BENCHMARKS,
    TABLE1,
    _spec_for,
    load,
    load_suite,
    table1_rows,
)


class TestWorkloadSpec:
    def test_defaults_valid(self):
        WorkloadSpec()

    def test_rejects_zero_functions(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_functions=0)

    def test_rejects_fewer_calls_than_functions(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_functions=10, num_calls=5)

    def test_rejects_missing_level_factors(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_levels=5, level_compile_factors=(1.0, 2.0))

    def test_rejects_bad_warmup_fraction(self):
        with pytest.raises(ValueError):
            WorkloadSpec(warmup_fraction=0.0)

    def test_rejects_bad_speedup_range(self):
        with pytest.raises(ValueError):
            WorkloadSpec(max_speedup_range=(0.5, 2.0))
        with pytest.raises(ValueError):
            WorkloadSpec(max_speedup_range=(4.0, 2.0))


class TestGenerate:
    def _spec(self, **kw):
        defaults = dict(
            name="g", num_functions=30, num_calls=2000, num_levels=4
        )
        defaults.update(kw)
        return WorkloadSpec(**defaults)

    def test_deterministic(self):
        a = generate(self._spec(), seed=5)
        b = generate(self._spec(), seed=5)
        assert a.calls == b.calls
        assert a.profiles == b.profiles

    def test_seed_changes_output(self):
        a = generate(self._spec(), seed=5)
        b = generate(self._spec(), seed=6)
        assert a.calls != b.calls

    def test_shape(self):
        inst = generate(self._spec(), seed=1)
        assert inst.num_calls == 2000
        assert inst.num_functions == 30  # every function appears

    def test_profiles_satisfy_definition1(self):
        inst = generate(self._spec(), seed=2)
        # FunctionProfile raises ModelError if violated; re-validate
        # explicitly for clarity.
        from repro.core.model import validate_monotone_levels

        for prof in inst.profiles.values():
            validate_monotone_levels(prof.compile_times, prof.exec_times)

    def test_hotness_is_skewed(self):
        inst = generate(self._spec(num_calls=20_000, zipf_s=1.4), seed=3)
        counts = sorted(
            (inst.call_count(f) for f in inst.called_functions), reverse=True
        )
        assert counts[0] > 5 * counts[len(counts) // 2]

    def test_first_appearances_in_warmup_window(self):
        spec = self._spec(num_calls=10_000, warmup_fraction=0.3)
        inst = generate(spec, seed=4)
        window = int(10_000 * 0.3)
        late = [
            f
            for f in inst.called_functions
            if inst.first_call_index(f) > window + spec.num_functions
        ]
        assert not late

    def test_single_level(self):
        inst = generate(
            self._spec(num_levels=1, level_compile_factors=(1.0,)), seed=1
        )
        assert all(p.num_levels == 1 for p in inst.profiles.values())

    def test_tiny_trace(self):
        inst = generate(self._spec(num_functions=5, num_calls=5), seed=0)
        assert inst.num_calls == 5
        assert inst.num_functions == 5


class TestDacapoPresets:
    def test_table1_has_nine_benchmarks(self):
        assert len(TABLE1) == 9
        assert set(BENCHMARKS) == {
            "antlr", "bloat", "eclipse", "fop", "hsqldb",
            "jython", "luindex", "lusearch", "pmd",
        }

    def test_full_scale_spec_matches_table1(self):
        for info in TABLE1:
            spec = _spec_for(info, 1.0)
            assert spec.num_functions == info.num_functions
            assert spec.num_calls == info.call_seq_length

    def test_scaled_load(self):
        inst = load("antlr", scale=0.002)
        info = BENCHMARKS["antlr"]
        assert inst.num_calls == int(info.call_seq_length * 0.002)
        assert inst.name == "antlr"

    def test_load_deterministic(self):
        assert load("fop", scale=0.002).calls == load("fop", scale=0.002).calls

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load("nosuch")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            load("antlr", scale=0.0)
        with pytest.raises(ValueError):
            load("antlr", scale=2.0)

    def test_load_suite(self):
        suite = load_suite(scale=0.002)
        assert len(suite) == 9
        assert all(inst.num_calls > 0 for inst in suite.values())

    def test_load_suite_seed_is_per_benchmark(self):
        """Regression: a shared seed used to reach every benchmark
        verbatim, generating correlated traces across the suite."""
        suite = load_suite(scale=0.002, seed=7)
        assert suite["antlr"].calls == load("antlr", scale=0.002, seed=7).calls
        # Benchmark i gets seed + i, not the shared seed.
        assert suite["bloat"].calls == load("bloat", scale=0.002, seed=8).calls
        assert suite["bloat"].calls != load("bloat", scale=0.002, seed=7).calls

    def test_load_suite_seeded_traces_are_decorrelated(self):
        suite = load_suite(scale=0.002, seed=3)
        # Same function-count presets would previously draw identical
        # call patterns; with per-benchmark seeds they must differ.
        a, b = suite["antlr"], suite["fop"]
        n = min(a.num_calls, b.num_calls)
        assert a.calls[:n] != b.calls[:n]

    def test_load_suite_default_seeds_unchanged(self):
        suite = load_suite(scale=0.002)
        assert suite["antlr"].calls == load("antlr", scale=0.002).calls
        assert suite["pmd"].calls == load("pmd", scale=0.002).calls

    def test_table1_rows(self):
        rows = table1_rows(scale=0.002)
        assert len(rows) == 9
        first = rows[0]
        assert first["program"] == "antlr"
        assert first["paper_functions"] == 1187
        assert first["generated_calls"] > 0

    def test_parallel_flags(self):
        assert BENCHMARKS["hsqldb"].parallel
        assert BENCHMARKS["lusearch"].parallel
        assert not BENCHMARKS["antlr"].parallel


class TestPhases:
    def _phased(self, churn, seed=5):
        spec = WorkloadSpec(
            name="phased",
            num_functions=30,
            num_calls=9000,
            zipf_s=1.3,
            num_phases=3,
            phase_churn=churn,
        )
        return generate(spec, seed=seed)

    def test_phase_parameters_validated(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_phases=0)
        with pytest.raises(ValueError):
            WorkloadSpec(phase_churn=1.5)

    def test_single_phase_unchanged_by_churn_knob(self):
        a = generate(WorkloadSpec(num_functions=20, num_calls=2000), seed=3)
        b = generate(
            WorkloadSpec(num_functions=20, num_calls=2000, phase_churn=0.9),
            seed=3,
        )
        assert a.calls == b.calls

    def test_churn_rotates_hot_set(self):
        from collections import Counter

        inst = self._phased(churn=0.9)
        third = inst.num_calls // 3
        tops = []
        for k in range(3):
            seg = inst.calls[k * third : (k + 1) * third]
            tops.append({f for f, _ in Counter(seg).most_common(3)})
        # At high churn, at least one phase's top-3 differs.
        assert tops[0] != tops[1] or tops[1] != tops[2]

    def test_zero_churn_keeps_phases_alike(self):
        from collections import Counter

        inst = self._phased(churn=0.0)
        third = inst.num_calls // 3
        top1 = {f for f, _ in Counter(inst.calls[third : 2 * third]).most_common(1)}
        top2 = {f for f, _ in Counter(inst.calls[2 * third :]).most_common(1)}
        assert top1 == top2

    def test_all_functions_still_appear(self):
        inst = self._phased(churn=0.8)
        assert inst.num_functions == 30
