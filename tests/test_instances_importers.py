"""The external-workload importers (V8, JVM, SCC) against the committed
fixture corpus: importing a fixture log must reproduce the committed
bundle bitwise."""

import json
from pathlib import Path

import pytest

from repro.instances import (
    InstanceError,
    bundle_from_jvm_log,
    bundle_from_scc,
    bundle_from_v8_log,
    read_bundle,
    write_bundle,
)
from repro.instances._seq import weighted_round_robin

FIXTURES = Path(__file__).parent / "fixtures"
IMPORTERS = FIXTURES / "importers"
INSTANCES = FIXTURES / "instances"

CORPUS = [
    (
        "v8-trace-opt",
        lambda: bundle_from_v8_log(
            IMPORTERS / "v8-trace-opt.log", name="v8-trace-opt"
        ),
    ),
    (
        "jvm-print-compilation",
        lambda: bundle_from_jvm_log(
            IMPORTERS / "jvm-print-compilation.log",
            name="jvm-print-compilation",
        ),
    ),
    (
        "scc-small",
        lambda: bundle_from_scc(
            IMPORTERS / "scc-small_mc_env.json", name="scc-small"
        ),
    ),
]


@pytest.mark.parametrize("name,build", CORPUS, ids=[c[0] for c in CORPUS])
class TestFixtureCorpus:
    def test_committed_bundle_validates(self, name, build):
        bundle = read_bundle(INSTANCES / name)
        assert bundle.name == name

    def test_reimport_matches_committed_bundle_bitwise(
        self, tmp_path, name, build
    ):
        fresh = build()
        root = write_bundle(fresh, tmp_path / name)
        committed = INSTANCES / name
        fresh_files = sorted(p.name for p in root.iterdir())
        committed_files = sorted(p.name for p in committed.iterdir())
        assert fresh_files == committed_files
        for fname in committed_files:
            assert (root / fname).read_bytes() == (
                committed / fname
            ).read_bytes(), fname

    def test_fingerprint_matches_manifest(self, name, build):
        manifest = json.loads(
            (INSTANCES / name / "manifest.json").read_text(encoding="utf-8")
        )
        assert build().content_fingerprint() == manifest["content_fingerprint"]


class TestV8Importer:
    def test_functions_and_order(self):
        bundle = bundle_from_v8_log(IMPORTERS / "v8-trace-opt.log")
        assert sorted(bundle.instance.profiles) == [
            "accumulate",
            "formatRow",
            "mainLoop",
            "parseEntry",
        ]
        assert bundle.source == "v8-log"
        assert bundle.time_unit == "ms"

    def test_first_measurement_wins_after_deopt(self):
        bundle = bundle_from_v8_log(IMPORTERS / "v8-trace-opt.log")
        # mainLoop is re-optimized after a deopt; the first took-triple
        # (0.319 + 1.106 + 0.033) is the one that sticks.
        assert bundle.instance.profiles["mainLoop"].compile_times[1] == (
            0.319 + 1.106 + 0.033
        )

    def test_marked_only_function_gets_single_level(self):
        bundle = bundle_from_v8_log(IMPORTERS / "v8-trace-opt.log")
        assert bundle.instance.profiles["formatRow"].num_levels == 1

    def test_text_source(self):
        text = (IMPORTERS / "v8-trace-opt.log").read_text(encoding="utf-8")
        from_text = bundle_from_v8_log(text, name="x", from_file=False)
        from_file = bundle_from_v8_log(
            IMPORTERS / "v8-trace-opt.log", name="x"
        )
        assert from_text.instance == from_file.instance

    def test_no_events_is_an_instance_error(self):
        with pytest.raises(InstanceError, match="^instance: v8 log"):
            bundle_from_v8_log("plain program output\n", from_file=False)


class TestJvmImporter:
    def test_levels_follow_max_tier(self):
        bundle = bundle_from_jvm_log(IMPORTERS / "jvm-print-compilation.log")
        assert bundle.source == "jvm-log"
        # Max tier in the log is 4, so every profile has 4 levels.
        assert all(
            p.num_levels == 4 for p in bundle.instance.profiles.values()
        )

    def test_osr_and_flagged_lines_parse(self):
        bundle = bundle_from_jvm_log(IMPORTERS / "jvm-print-compilation.log")
        profiles = bundle.instance.profiles
        assert "com.example.Loop::main" in profiles  # `%` OSR + `@ 2`
        assert "java.lang.StringBuffer::append" in profiles  # `s` flag
        assert "java.io.BufferedReader::readLine" in profiles  # `!` flag

    def test_hotter_tier_means_more_calls(self):
        bundle = bundle_from_jvm_log(IMPORTERS / "jvm-print-compilation.log")
        calls = list(bundle.instance.calls)
        # hashCode reached tier 4, Util::clamp only tier 2.
        assert calls.count("java.lang.String::hashCode") > calls.count(
            "com.example.Util::clamp"
        )

    def test_no_events_is_an_instance_error(self):
        with pytest.raises(InstanceError, match="^instance: jvm log"):
            bundle_from_jvm_log("no compiles here\n", from_file=False)


class TestSccImporter:
    def copy_fixture(self, tmp_path, skip=()):
        for path in IMPORTERS.glob("scc-small_*"):
            if path.name in skip:
                continue
            (tmp_path / path.name).write_bytes(path.read_bytes())
        return tmp_path

    def test_directory_resolution(self, tmp_path):
        root = self.copy_fixture(tmp_path)
        bundle = bundle_from_scc(root)
        assert bundle.name == "scc-small"
        assert bundle.compile_threads == 2  # converter stage machines
        assert bundle.due_dates is not None and len(bundle.due_dates) == 5

    def test_prefix_and_any_member_file_resolve_alike(self, tmp_path):
        root = self.copy_fixture(tmp_path)
        by_prefix = bundle_from_scc(root / "scc-small")
        by_pt = bundle_from_scc(root / "scc-small_pt.csv")
        assert by_prefix.instance == by_pt.instance

    def test_calls_follow_cast_order(self):
        bundle = bundle_from_scc(IMPORTERS / "scc-small_mc_env.json")
        assert bundle.instance.calls == (
            "ch01", "ch02", "ch03", "ch04", "ch05", "ch01", "ch04",
        )

    def test_level_costs_are_the_stage_split(self):
        bundle = bundle_from_scc(IMPORTERS / "scc-small_mc_env.json")
        prof = bundle.instance.profiles["ch01"]  # 3.0, 2.0, 1.5
        assert prof.compile_times == (0.0, 3.0)
        assert prof.exec_times == (6.5, 3.5)

    def test_due_dates_missing_file_is_optional(self, tmp_path):
        root = self.copy_fixture(tmp_path, skip={"scc-small_duedate.json"})
        assert bundle_from_scc(root).due_dates is None

    def test_missing_required_file(self, tmp_path):
        root = self.copy_fixture(tmp_path, skip={"scc-small_pt.csv"})
        with pytest.raises(InstanceError, match="missing file"):
            bundle_from_scc(root)

    def test_two_instances_in_one_directory(self, tmp_path):
        root = self.copy_fixture(tmp_path)
        (root / "other_mc_env.json").write_text("{}", encoding="utf-8")
        with pytest.raises(InstanceError, match="several instances"):
            bundle_from_scc(root)

    def test_cast_referencing_unknown_charge(self, tmp_path):
        root = self.copy_fixture(tmp_path)
        (root / "scc-small_cast.json").write_text(
            json.dumps({"casts": [["ch01", "ch99"]]}), encoding="utf-8"
        )
        with pytest.raises(InstanceError, match="ch99"):
            bundle_from_scc(root)

    def test_stage_mismatch_between_env_and_pt(self, tmp_path):
        root = self.copy_fixture(tmp_path)
        (root / "scc-small_mc_env.json").write_text(
            json.dumps({"stages": {"melt": 1, "cast": 1}}), encoding="utf-8"
        )
        with pytest.raises(InstanceError, match="do not match"):
            bundle_from_scc(root)

    def test_negative_processing_time(self, tmp_path):
        root = self.copy_fixture(tmp_path)
        pt = root / "scc-small_pt.csv"
        pt.write_text(
            pt.read_text(encoding="utf-8").replace("3.0,2.0,1.5", "-3.0,2.0,1.5"),
            encoding="utf-8",
        )
        with pytest.raises(InstanceError, match="finite and >= 0"):
            bundle_from_scc(root)


class TestWeightedRoundRobin:
    def test_interleaves_in_rounds(self):
        assert weighted_round_robin([("a", 3), ("b", 1), ("c", 2)]) == (
            "a", "b", "c", "a", "c", "a",
        )

    def test_zero_weight_skipped(self):
        assert weighted_round_robin([("a", 0), ("b", 2)]) == ("b", "b")

    def test_empty(self):
        assert weighted_round_robin([]) == ()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            weighted_round_robin([("a", -1)])
