"""Tests for the mini-JIT inliner."""

import pytest

from repro.jitsim import (
    Interpreter,
    Program,
    assemble,
    extract_instance,
    fib_program,
    loops_program,
    phased_program,
)
from repro.jitsim.inlining import inline_program, is_inlinable


def square_program():
    square = assemble(
        "square", 1, 1, "LOAD 0\nLOAD 0\nMUL\nRET"
    )
    main = assemble(
        "main",
        1,
        2,
        """
            LOAD 0
            CALL square
            STORE 1
            LOAD 1
            PUSH 1
            ADD
            CALL square
            RET
        """,
    )
    return Program.from_functions([main, square], entry="main")


class TestIsInlinable:
    def test_small_leaf(self):
        func = assemble("f", 1, 1, "LOAD 0\nRET")
        assert is_inlinable(func)

    def test_too_big(self):
        func = assemble("f", 1, 1, "LOAD 0\nRET")
        assert not is_inlinable(func, max_size=1)

    def test_non_leaf(self):
        g = assemble("g", 0, 0, "CALL h\nRET")
        assert not is_inlinable(g)


class TestSemanticsPreserved:
    @pytest.mark.parametrize("arg", [0, 3, 7])
    def test_square_program(self, arg):
        original = square_program()
        inlined = inline_program(original)
        a = Interpreter(original).run(arg)
        b = Interpreter(inlined).run(arg)
        assert a.result == b.result

    def test_loops_program(self):
        original = loops_program(hot_calls=30, warm_calls=5)
        inlined = inline_program(original)
        assert (
            Interpreter(original).run().result
            == Interpreter(inlined).run().result
        )

    def test_phased_program(self):
        original = phased_program(phase_calls=20)
        inlined = inline_program(original)
        assert (
            Interpreter(original).run().result
            == Interpreter(inlined).run().result
        )

    def test_fib_program_recursion_not_inlined(self):
        # fib calls itself: not a leaf, must survive untouched.
        original = fib_program()
        inlined = inline_program(original)
        assert inlined.functions["fib"].code == original.functions["fib"].code
        assert (
            Interpreter(original).run(10).result
            == Interpreter(inlined).run(10).result
        )

    def test_two_rounds(self):
        # After round 1 inlines `leaf` into `mid`, `mid` becomes a leaf
        # and round 2 can inline it into main.
        leaf = assemble("leaf", 1, 1, "LOAD 0\nPUSH 2\nMUL\nRET")
        mid = assemble("mid", 1, 1, "LOAD 0\nCALL leaf\nPUSH 1\nADD\nRET")
        main = assemble("main", 1, 1, "LOAD 0\nCALL mid\nRET")
        program = Program.from_functions([main, mid, leaf], entry="main")
        once = inline_program(program, rounds=1)
        twice = inline_program(program, rounds=2)
        assert Interpreter(twice).run(5).result == 11
        assert not twice.functions["main"].call_targets()
        assert once.functions["main"].call_targets() == ["mid"]


class TestTraceEffects:
    def test_inlining_shrinks_call_sequence(self):
        original = loops_program(hot_calls=100, warm_calls=10)
        inlined = inline_program(original)
        trace_orig = Interpreter(original).run()
        trace_inl = Interpreter(inlined).run()
        assert len(trace_inl.invocations) < len(trace_orig.invocations)
        # hot_leaf disappears from the sequence entirely.
        assert "hot_leaf" not in trace_inl.call_sequence

    def test_caller_grows(self):
        original = loops_program()
        inlined = inline_program(original)
        assert (
            inlined.functions["hot_loop"].size
            > original.functions["hot_loop"].size
        )

    def test_instance_extraction_after_inlining(self):
        inlined = inline_program(loops_program(hot_calls=100, warm_calls=10))
        inst = extract_instance(inlined, name="inlined")
        assert inst.num_calls > 0
        assert "hot_leaf" not in inst.called_functions

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            inline_program(square_program(), rounds=0)


class TestJumpFixups:
    def test_backward_jumps_survive(self):
        # A loop around an inlinable call: back edges must be repointed.
        leaf = assemble("leaf", 1, 1, "LOAD 0\nPUSH 1\nADD\nRET")
        main = assemble(
            "main",
            1,
            2,
            """
                PUSH 0
                STORE 1
            loop:
                LOAD 0
                JZ done
                LOAD 1
                CALL leaf
                STORE 1
                LOAD 0
                PUSH 1
                SUB
                STORE 0
                JMP loop
            done:
                LOAD 1
                RET
            """,
        )
        program = Program.from_functions([main, leaf], entry="main")
        inlined = inline_program(program)
        for n in (0, 1, 5):
            assert (
                Interpreter(inlined).run(n).result
                == Interpreter(program).run(n).result
            )

    def test_multiple_sites_in_one_caller(self):
        inlined = inline_program(square_program())
        main = inlined.functions["main"]
        assert not main.call_targets()
        assert Interpreter(inlined).run(3).result == 100  # (3^2+1)^2
