"""Meta-tests: public API wiring stays consistent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.vm",
    "repro.jitsim",
    "repro.workloads",
    "repro.analysis",
    "repro.observability",
    "repro.perf",
    "repro.instances",
    "repro.cli",
]

MODULES = [
    "repro.core.model", "repro.core.schedule", "repro.core.makespan",
    "repro.core.singlecore", "repro.core.bounds", "repro.core.single_level",
    "repro.core.iar", "repro.core.baselines", "repro.core.astar",
    "repro.core.bruteforce", "repro.core.complexity", "repro.core.localsearch",
    "repro.core.online", "repro.core.prediction", "repro.core.replan",
    "repro.core.interp_tier", "repro.core.variability", "repro.core.osr",
    "repro.vm.costbenefit", "repro.vm.runtime", "repro.vm.jikes",
    "repro.vm.v8", "repro.vm.hotspot", "repro.vm.priorityqueue",
    "repro.jitsim.bytecode", "repro.jitsim.interpreter",
    "repro.jitsim.compiler", "repro.jitsim.programs",
    "repro.jitsim.generator", "repro.jitsim.inlining",
    "repro.jitsim.profile_extract",
    "repro.workloads.synthetic", "repro.workloads.dacapo",
    "repro.workloads.traces", "repro.workloads.call_log",
    "repro.analysis.metrics", "repro.analysis.experiments",
    "repro.analysis.reporting", "repro.analysis.diagnose",
    "repro.analysis.sensitivity", "repro.analysis.export",
    "repro.observability.tracer", "repro.observability.metrics",
    "repro.observability.export", "repro.observability.instrument",
    "repro.perf.harness", "repro.perf.baseline", "repro.perf.compare",
    "repro.perf.report", "repro.perf.suites",
    "repro.instances.format", "repro.instances.v8log",
    "repro.instances.jvmlog", "repro.instances.scc",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for public in getattr(module, "__all__", []):
        assert hasattr(module, public), f"{name}.__all__ lists missing {public}"


def test_core_reexports_cover_submodules():
    """Every scheduler entry point is reachable from repro.core."""
    import repro.core as core

    for name in (
        "iar_schedule", "base_level_schedule", "optimizing_level_schedule",
        "ondemand_promotion_schedule", "hotness_first_schedule",
        "greedy_budget_schedule", "random_schedule", "astar_schedule",
        "optimal_schedule", "improve_schedule", "simulate", "simulate_osr",
        "simulate_variable", "simulate_single_core", "lower_bound",
        "warmup_aware_lower_bound", "replan_iar", "cross_run_iar",
    ):
        assert hasattr(core, name), name


def test_version():
    import repro

    assert repro.__version__
