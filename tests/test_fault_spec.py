"""Tests for the fault-spec grammar and its canonical form."""

import pytest

from repro.faults import DIMENSIONS, FaultSpec, FaultSpecError, parse_fault_spec


class TestParse:
    def test_empty_is_null(self):
        assert parse_fault_spec("").is_null
        assert parse_fault_spec("   ").is_null
        assert parse_fault_spec(",,").is_null

    def test_defaults(self):
        spec = parse_fault_spec("")
        assert spec == FaultSpec()
        assert spec.retries == 2
        assert spec.stall_factor == 4.0
        assert spec.seed == 0

    def test_single_rate(self):
        spec = parse_fault_spec("compile_fail=0.25")
        assert spec.compile_fail == 0.25
        assert not spec.is_null

    def test_every_key(self):
        spec = parse_fault_spec(
            "compile_fail=0.1,stall=0.2,stall_factor=8,mispredict=0.3,"
            "tick_drop=0.05,tick_dup=0.06,retries=1,backoff=2.5,seed=9"
        )
        assert spec == FaultSpec(
            compile_fail=0.1,
            stall=0.2,
            stall_factor=8.0,
            mispredict=0.3,
            tick_drop=0.05,
            tick_dup=0.06,
            retries=1,
            backoff=2.5,
            seed=9,
        )

    def test_whitespace_tolerant(self):
        assert parse_fault_spec(" seed = 3 , stall = 0.5 ") == FaultSpec(
            seed=3, stall=0.5
        )

    def test_int_fields_are_ints(self):
        spec = parse_fault_spec("retries=3,seed=7")
        assert isinstance(spec.retries, int)
        assert isinstance(spec.seed, int)

    def test_passthrough_spec_instance(self):
        spec = FaultSpec(stall=0.5)
        assert parse_fault_spec(spec) is spec

    @pytest.mark.parametrize(
        "text",
        [
            "compile_fail",         # no '='
            "=0.5",                 # no key
            "compile_fail=",        # no value
            "bogus=1",              # unknown key
            "compile_fail=high",    # unparsable float
            "retries=1.5",          # unparsable int
            "compile_fail=1.5",     # out of range
            "compile_fail=-0.1",
            "stall_factor=0.5",     # < 1
            "mispredict=-1",
            "retries=-1",
            "backoff=-2",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(FaultSpecError, match="^fault spec:"):
            parse_fault_spec(text)

    def test_rejects_non_string(self):
        with pytest.raises(FaultSpecError, match="^fault spec:"):
            parse_fault_spec(42)

    def test_error_is_value_error(self):
        # The CLI's top-level handler catches ValueError.
        with pytest.raises(ValueError):
            parse_fault_spec("nope=1")


class TestCanonical:
    def test_round_trip(self):
        spec = FaultSpec(compile_fail=0.125, retries=1, seed=5, backoff=0.5)
        assert parse_fault_spec(spec.canonical()) == spec

    def test_round_trip_null(self):
        assert parse_fault_spec(FaultSpec().canonical()) == FaultSpec()

    def test_sorted_and_complete(self):
        text = FaultSpec().canonical()
        keys = [item.split("=")[0] for item in text.split(",")]
        assert keys == sorted(keys)
        assert set(keys) == {
            "compile_fail", "stall", "stall_factor", "mispredict",
            "tick_drop", "tick_dup", "retries", "backoff", "seed",
        }

    def test_identity_is_stable(self):
        a = parse_fault_spec("stall=0.5,seed=1")
        b = parse_fault_spec("seed=1,stall=0.5")
        assert a.canonical() == b.canonical()


class TestScaled:
    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_each_dimension(self, dimension):
        spec = FaultSpec(seed=4, retries=1).scaled(dimension, 0.3)
        assert spec.seed == 4 and spec.retries == 1
        if dimension == "ticks":
            assert spec.tick_drop == 0.3 and spec.tick_dup == 0.3
        else:
            assert getattr(spec, dimension) == 0.3

    def test_zero_rate_is_null(self):
        for dimension in DIMENSIONS:
            assert FaultSpec().scaled(dimension, 0.0).is_null

    def test_unknown_dimension(self):
        with pytest.raises(FaultSpecError, match="dimension"):
            FaultSpec().scaled("gamma_rays", 0.1)

    def test_out_of_range_rate(self):
        with pytest.raises(FaultSpecError):
            FaultSpec().scaled("compile_fail", 1.5)


class TestIsNull:
    def test_rates_matter(self):
        assert FaultSpec().is_null
        assert not FaultSpec(compile_fail=0.1).is_null
        assert not FaultSpec(stall=0.1).is_null
        assert not FaultSpec(mispredict=0.1).is_null
        assert not FaultSpec(tick_drop=0.1).is_null
        assert not FaultSpec(tick_dup=0.1).is_null

    def test_knobs_do_not(self):
        # Knobs without a rate cannot fire anything.
        assert FaultSpec(stall_factor=16.0, retries=5, backoff=3.0, seed=9).is_null
