"""The content-addressed result store: fingerprints, cache, journal.

The store's one inviolable property is *no stale hits*: every input
that can change a unit's rows must change its fingerprint, and every
failure mode of the on-disk format (torn writes, corruption, version
skew) must read as a miss, never as wrong data.
"""

import json

import pytest

from repro.core import FunctionProfile, OCSPInstance
from repro.store import (
    CODE_VERSION,
    ResultStore,
    RunState,
    UnitRecord,
    canonical_encode,
    fingerprint_instance,
    fingerprint_unit,
    load_runstate,
)


def make_instance(
    compile_times=(4.0, 9.0),
    exec_times=(10.0, 6.0),
    calls=("f", "g", "f"),
    name="inst",
):
    profiles = {
        "f": FunctionProfile("f", tuple(compile_times), tuple(exec_times)),
        "g": FunctionProfile("g", (3.0, 7.0), (8.0, 5.0)),
    }
    return OCSPInstance(profiles=profiles, calls=tuple(calls), name=name)


ROWS = [{"benchmark": "inst", "scheme": "iar", "makespan": 123.5}]


class TestCanonicalEncode:
    def test_mapping_order_is_irrelevant(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode(
            {"b": 2, "a": 1}
        )

    def test_int_and_float_encode_differently(self):
        assert canonical_encode(1) != canonical_encode(1.0)

    def test_floats_round_trip_exactly(self):
        assert canonical_encode(0.1 + 0.2) != canonical_encode(0.3)
        assert canonical_encode(0.30000000000000004) == canonical_encode(0.1 + 0.2)


class TestFingerprintSensitivity:
    """Every result-affecting input must perturb the unit fingerprint."""

    def base(self, **overrides):
        kw = dict(
            instance=make_instance(),
            driver="figure5",
            driver_kwargs={"model_seed": 1},
            benchmark="inst",
        )
        kw.update(overrides)
        return fingerprint_unit(**kw)

    def test_is_stable(self):
        assert self.base() == self.base()

    def test_compile_table_changes_it(self):
        assert self.base() != self.base(
            instance=make_instance(compile_times=(4.0, 9.5))
        )

    def test_exec_table_changes_it(self):
        assert self.base() != self.base(
            instance=make_instance(exec_times=(10.0, 6.5))
        )

    def test_call_sequence_changes_it(self):
        assert self.base() != self.base(
            instance=make_instance(calls=("f", "f", "g"))
        )

    def test_driver_name_changes_it(self):
        assert self.base() != self.base(driver="figure6")

    def test_driver_kwargs_change_it(self):
        assert self.base() != self.base(driver_kwargs={"model_seed": 2})
        assert self.base() != self.base(driver_kwargs={})

    def test_benchmark_key_changes_it(self):
        assert self.base() != self.base(benchmark="other")

    def test_code_version_salt_changes_it(self):
        assert self.base() != self.base(code_version=CODE_VERSION + ".bumped")

    def test_instance_label_does_not_change_it(self):
        # The label is carried by the benchmark key; two identical
        # traces under different labels are the same problem.
        assert self.base() == self.base(instance=make_instance(name="renamed"))
        assert fingerprint_instance(make_instance()) == fingerprint_instance(
            make_instance(name="renamed")
        )

    def test_kwarg_order_does_not_change_it(self):
        a = self.base(driver_kwargs={"x": 1, "y": 2})
        b = self.base(driver_kwargs={"y": 2, "x": 1})
        assert a == b


class TestResultStore:
    def test_miss_then_put_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = fingerprint_unit(make_instance(), "figure5")
        assert store.get(fp) is None
        assert fp not in store
        store.put(fp, ROWS, driver="figure5", benchmark="inst")
        assert fp in store
        assert store.get(fp) == ROWS
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_entries_fan_out_by_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = "ab" + "0" * 62
        path = store.put(fp, ROWS)
        assert path == tmp_path / "objects" / "ab" / f"{fp}.json"
        assert path.is_file()

    def test_atomic_write_leaves_no_tmp_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("cd" + "0" * 62, ROWS)
        assert list(store.objects_dir.glob("*/*.tmp")) == []

    def test_corrupt_entry_is_a_miss_and_is_unlinked(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = "ef" + "0" * 62
        path = store.put(fp, ROWS)
        path.write_text('{"version": 1, "rows": [truncated')  # torn write
        assert store.get(fp) is None
        assert not path.exists()

    def test_version_skew_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = "0a" + "0" * 62
        path = store.put(fp, ROWS)
        doc = json.loads(path.read_text())
        doc["version"] = 999
        path.write_text(json.dumps(doc))
        assert store.get(fp) is None

    def test_entry_claiming_wrong_fingerprint_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        fp_a = "1a" + "0" * 62
        fp_b = "1b" + "0" * 62
        path = store.put(fp_a, ROWS)
        # Simulate a mis-filed entry: content says fp_a, path says fp_b.
        target = store.path_for(fp_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path.read_text())
        assert store.get(fp_b) is None

    def test_implausible_fingerprint_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).path_for("ab")

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("2a" + "0" * 62, ROWS, driver="figure5")
        store.put("2b" + "0" * 62, ROWS, driver="figure5")
        store.put("2c" + "0" * 62, ROWS, driver="table2")
        stats = store.stats()
        assert stats.entries == 3
        assert stats.by_driver == {"figure5": 2, "table2": 1}
        assert stats.total_bytes > 0
        assert stats.oldest is not None and stats.oldest <= stats.newest
        assert stats.as_dict()["entries"] == 3

    def test_gc_removes_stray_tmp_and_corrupt_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        keep = "3a" + "0" * 62
        store.put(keep, ROWS)
        # A crashed writer's leftovers plus a corrupt entry.
        sub = store.objects_dir / "3b"
        sub.mkdir()
        (sub / ("3b" + "0" * 62 + ".9999.tmp")).write_text("partial")
        (sub / ("3b" + "1" * 62 + ".json")).write_text("not json")
        assert store.gc() == 2
        assert store.get(keep) == ROWS

    def test_gc_by_age(self, tmp_path):
        store = ResultStore(tmp_path)
        old_fp = "4a" + "0" * 62
        path = store.put(old_fp, ROWS)
        doc = json.loads(path.read_text())
        doc["created_at"] -= 10 * 86400
        path.write_text(json.dumps(doc))
        fresh_fp = "4b" + "0" * 62
        store.put(fresh_fp, ROWS)
        assert store.gc(max_age_days=5) == 1
        assert store.get(old_fp) is None
        assert store.get(fresh_fp) == ROWS

    def test_gc_by_code_version(self, tmp_path):
        store = ResultStore(tmp_path)
        stale = "5a" + "0" * 62
        store.put(stale, ROWS, code_version="ancient")
        current = "5b" + "0" * 62
        store.put(current, ROWS, code_version=CODE_VERSION)
        assert store.gc(code_version=CODE_VERSION) == 1
        assert store.get(stale) is None
        assert store.get(current) == ROWS

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("6a" + "0" * 62, ROWS)
        store.put("6b" + "0" * 62, ROWS)
        assert store.clear() == 2
        assert store.stats().entries == 0


class TestRunState:
    def plan(self):
        return {"figure5/alpha": "f" * 64, "figure5/beta": "e" * 64}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "runstate.jsonl"
        with RunState(path) as journal:
            journal.begin(self.plan())
            journal.record(
                UnitRecord("figure5/alpha", "f" * 64, "computed", rows=ROWS)
            )
            journal.record(
                UnitRecord(
                    "figure5/beta",
                    "e" * 64,
                    "failed",
                    error="ValueError: boom",
                    attempts=3,
                )
            )
        records = load_runstate(path)
        assert set(records) == {"figure5/alpha", "figure5/beta"}
        assert records["figure5/alpha"].resumable
        assert records["figure5/alpha"].rows == ROWS
        assert not records["figure5/beta"].resumable
        assert records["figure5/beta"].attempts == 3
        assert records["figure5/beta"].error == "ValueError: boom"

    def test_missing_journal_is_empty(self, tmp_path):
        assert load_runstate(tmp_path / "absent.jsonl") == {}

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "runstate.jsonl"
        with RunState(path) as journal:
            journal.begin(self.plan())
            journal.record(
                UnitRecord("figure5/alpha", "f" * 64, "computed", rows=ROWS)
            )
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "unit", "key": "figure5/beta", "sta')  # crash
        records = load_runstate(path)
        assert set(records) == {"figure5/alpha"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "runstate.jsonl"
        with RunState(path) as journal:
            journal.begin(self.plan())
            journal.record(
                UnitRecord("figure5/alpha", "f" * 64, "computed", rows=ROWS)
            )
            journal.record(
                UnitRecord("figure5/beta", "e" * 64, "computed", rows=ROWS)
            )
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:20]  # damage a non-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line 2"):
            load_runstate(path)

    def test_begin_truncates_previous_journal(self, tmp_path):
        path = tmp_path / "runstate.jsonl"
        with RunState(path) as journal:
            journal.begin(self.plan())
            journal.record(
                UnitRecord("figure5/alpha", "f" * 64, "computed", rows=ROWS)
            )
        with RunState(path) as journal:
            journal.begin(self.plan())
        assert load_runstate(path) == {}

    def test_record_before_begin_raises(self, tmp_path):
        journal = RunState(tmp_path / "runstate.jsonl")
        with pytest.raises(RuntimeError):
            journal.record(UnitRecord("k", "f" * 64, "computed", rows=ROWS))
