"""Tracing is observation only: enabling it must not move a single bit.

Every golden benchmark is replayed twice per scheme — tracer off and
tracer on — and the make-spans are compared with ``==`` (no tolerance).
The recorded trace must also survive the Chrome-format validator and
carry the expected tracks.
"""

from __future__ import annotations

import pytest

from repro.core import iar_schedule, simulate
from repro.observability import (
    Tracer,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.vm.jikes import run_jikes
from repro.vm.v8 import run_v8
from repro.workloads import dacapo

SCALE = 0.002


@pytest.mark.parametrize("name", sorted(dacapo.BENCHMARKS))
def test_tracing_is_bitwise_invisible(name):
    instance = dacapo.load(name, scale=SCALE)

    tracer = Tracer()
    plain = run_jikes(instance)
    traced = run_jikes(instance, tracer=tracer.scope("jikes"))
    assert traced.makespan == plain.makespan
    assert traced.samples_taken == plain.samples_taken
    assert traced.schedule == plain.schedule

    plain_v8 = run_v8(instance)
    traced_v8 = run_v8(instance, tracer=tracer.scope("v8"))
    assert traced_v8.makespan == plain_v8.makespan
    assert traced_v8.samples_taken == plain_v8.samples_taken

    sched = iar_schedule(instance)
    plain_iar = simulate(instance, sched)
    traced_iar = simulate(instance, sched, tracer=tracer.scope("iar"))
    assert traced_iar.makespan == plain_iar.makespan
    assert traced_iar.total_bubble_time == plain_iar.total_bubble_time

    # All three runs share one tracer; the export must validate whole.
    data = to_chrome_trace(tracer)
    assert validate_chrome_trace(data) == len(tracer)


def test_trace_carries_expected_tracks():
    instance = dacapo.load("antlr", scale=SCALE)
    tracer = Tracer()
    run_jikes(instance, tracer=tracer)
    tracks = {e.track for e in tracer.events}
    assert "execute" in tracks
    assert "compiler-0" in tracks
    assert "queue" in tracks
    assert "sampler" in tracks
    categories = {e.category for e in tracer.events}
    assert {"compile", "call", "enqueue", "sample"} <= categories


def test_traced_simulate_returns_same_shape():
    """``tracer=`` must not change what callers get back."""
    instance = dacapo.load("fop", scale=SCALE)
    sched = iar_schedule(instance)
    bare = simulate(instance, sched)
    traced = simulate(instance, sched, tracer=Tracer())
    assert bare.task_timings is None and traced.task_timings is None
    with_timeline = simulate(
        instance, sched, record_timeline=True, tracer=Tracer()
    )
    assert with_timeline.task_timings is not None


def test_multithreaded_compile_spans_do_not_overlap_per_thread():
    instance = dacapo.load("hsqldb", scale=SCALE)
    tracer = Tracer()
    run_v8(instance, compile_threads=4, tracer=tracer)
    validate_chrome_trace(to_chrome_trace(tracer))
    compiler_tracks = {
        e.track for e in tracer.events if e.track.startswith("compiler-")
    }
    assert len(compiler_tracks) > 1
