"""Tests for the random program generator."""

import pytest

from repro.core import iar_schedule, lower_bound, simulate
from repro.jitsim import Interpreter, ProgramSpec, extract_instance, random_program


class TestProgramSpec:
    def test_defaults_valid(self):
        ProgramSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_leaves": 0},
            {"num_drivers": 0},
            {"max_leaf_rounds": 0},
            {"max_trip_count": 0},
            {"max_calls_per_driver": 0},
            {"phases": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ProgramSpec(**kwargs)


class TestRandomProgram:
    def test_deterministic(self):
        a = random_program(seed=5)
        b = random_program(seed=5)
        assert set(a.functions) == set(b.functions)
        for name in a.functions:
            assert a.functions[name].code == b.functions[name].code

    def test_seed_changes_program(self):
        a = random_program(seed=5)
        b = random_program(seed=6)
        codes_a = [a.functions[n].code for n in sorted(a.functions)]
        codes_b = [b.functions[n].code for n in sorted(b.functions)]
        assert codes_a != codes_b

    @pytest.mark.parametrize("seed", range(8))
    def test_terminates_and_runs(self, seed):
        program = random_program(seed=seed)
        trace = Interpreter(program, max_steps=5_000_000).run()
        assert trace.total_instructions > 0
        assert trace.call_sequence[0] == "main"

    def test_shape_parameters_respected(self):
        spec = ProgramSpec(num_leaves=6, num_drivers=4, phases=3)
        program = random_program(spec, seed=1)
        names = set(program.functions)
        assert sum(1 for n in names if n.startswith("leaf")) == 6
        assert sum(1 for n in names if n.startswith("driver")) == 4

    def test_phases_rotate_drivers(self):
        spec = ProgramSpec(num_drivers=3, phases=4)
        program = random_program(spec, seed=2)
        main = program.functions["main"]
        assert len(main.call_targets()) == 4

    def test_end_to_end_scheduling(self):
        spec = ProgramSpec(num_leaves=5, num_drivers=3, max_trip_count=200, phases=3)
        inst = extract_instance(random_program(spec, seed=3), name="random")
        sched = iar_schedule(inst)
        sched.validate(inst)
        span = simulate(inst, sched, validate=False).makespan
        assert span >= lower_bound(inst)

    def test_work_is_bounded(self):
        # Even a large spec stays within a modest step budget.
        spec = ProgramSpec(
            num_leaves=8, num_drivers=6, max_trip_count=100,
            max_calls_per_driver=4, phases=5,
        )
        program = random_program(spec, seed=4)
        trace = Interpreter(program, max_steps=2_000_000).run()
        assert trace.total_instructions < 2_000_000
