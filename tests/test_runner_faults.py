"""Fault injection for the resumable experiment runner.

Three ways a unit can go wrong — its driver raises, it runs past the
wall-clock budget, its worker process dies — and the recovery contract
for each: retries with backoff, pool rebuilds that never take innocent
units down with the culprit, and a checkpoint journal that lets a
killed run resume to bitwise-identical rows.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import PARALLEL_DRIVERS, run_parallel
from repro.analysis.experiments import figure5
from repro.observability import MetricsRegistry
from repro.store import ResultStore
from repro.workloads import WorkloadSpec, generate

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="fault drivers ride into workers via fork"
)


@pytest.fixture(scope="module")
def suite():
    out = {}
    for i, name in enumerate(("alpha", "beta", "gamma")):
        spec = WorkloadSpec(name=name, num_functions=6, num_calls=80, num_levels=3)
        out[name] = generate(spec, seed=300 + i)
    return out


# ----------------------------------------------------------------------
# Fault drivers.  Registered for this module only (and before any pool
# exists, so fork-spawned workers inherit them); each delegates to
# figure5 on the benchmarks it leaves alone, so "innocent" rows stay
# comparable to a clean run.
# ----------------------------------------------------------------------
def _faulty_raise(suite, *, victim="beta"):
    if victim in suite:
        raise ValueError(f"injected failure for {victim}")
    return figure5(suite)


def _faulty_flaky(suite, *, victim="beta", token_dir=""):
    # Fails once per victim, then succeeds: cross-process state via a
    # token file (attempts run in different worker processes).
    if victim in suite:
        token = Path(token_dir) / f"{victim}.token"
        if not token.exists():
            token.write_text("seen")
            raise ValueError(f"injected first-attempt failure for {victim}")
    return figure5(suite)


def _faulty_sleep(suite, *, victim="beta", seconds=30.0):
    if victim in suite:
        time.sleep(seconds)
    return figure5(suite)


def _faulty_kill(suite, *, victim="beta"):
    if victim in suite:
        os.kill(os.getpid(), signal.SIGKILL)  # worker dies mid-task
    return figure5(suite)


@pytest.fixture(scope="module", autouse=True)
def _fault_drivers():
    injected = (_faulty_raise, _faulty_flaky, _faulty_sleep, _faulty_kill)
    for func in injected:
        PARALLEL_DRIVERS[func.__name__] = func
    yield
    for func in injected:
        PARALLEL_DRIVERS.pop(func.__name__, None)


class TestRaisingWorker:
    def test_serial_retries_then_fails_without_collateral(self, suite):
        metrics = MetricsRegistry()
        run = run_parallel(
            suite,
            drivers=("_faulty_raise",),
            jobs=1,
            max_retries=2,
            retry_backoff=0.001,
            metrics=metrics,
        )
        assert not run.ok
        assert run.statuses["_faulty_raise/beta"] == "failed"
        assert run.statuses["_faulty_raise/alpha"] == "computed"
        assert run.statuses["_faulty_raise/gamma"] == "computed"
        [error] = run.errors
        assert error["benchmark"] == "beta"
        assert "injected failure" in error["error"]
        # max_retries=2 → 3 attempts → 2 retry waits.
        assert metrics.counter("runner.retries").value == 2
        assert run.rows["_faulty_raise"] == figure5(
            {k: v for k, v in suite.items() if k != "beta"}
        )

    @needs_fork
    def test_pool_retries_then_fails_without_collateral(self, suite):
        run = run_parallel(
            suite,
            drivers=("_faulty_raise",),
            jobs=2,
            max_retries=1,
            retry_backoff=0.001,
        )
        assert run.statuses["_faulty_raise/beta"] == "failed"
        assert run.status_counts()["computed"] == 2
        assert run.rows["_faulty_raise"] == figure5(
            {k: v for k, v in suite.items() if k != "beta"}
        )

    @needs_fork
    def test_flaky_unit_ends_retried_and_ok(self, suite, tmp_path):
        run = run_parallel(
            suite,
            drivers=("_faulty_flaky",),
            jobs=2,
            max_retries=2,
            retry_backoff=0.001,
            driver_kwargs={"_faulty_flaky": {"token_dir": str(tmp_path)}},
        )
        assert run.ok
        assert run.statuses["_faulty_flaky/beta"] == "retried"
        assert run.rows["_faulty_flaky"] == figure5(suite)


class TestTimeout:
    @needs_fork
    def test_sleeper_is_timed_out_and_innocents_complete(self, suite):
        metrics = MetricsRegistry()
        run = run_parallel(
            suite,
            drivers=("_faulty_sleep",),
            jobs=2,
            timeout=0.5,
            max_retries=0,
            metrics=metrics,
        )
        assert run.statuses["_faulty_sleep/beta"] == "timed_out"
        assert run.statuses["_faulty_sleep/alpha"] == "computed"
        assert run.statuses["_faulty_sleep/gamma"] == "computed"
        [error] = run.errors
        assert "wall-clock" in error["error"]
        # Reclaiming the stuck worker forces at least one pool rebuild.
        assert metrics.counter("runner.pool_rebuilds").value >= 1
        assert run.rows["_faulty_sleep"] == figure5(
            {k: v for k, v in suite.items() if k != "beta"}
        )


class TestWorkerCrash:
    @needs_fork
    def test_broken_pool_is_rebuilt_and_innocents_survive(self, suite):
        metrics = MetricsRegistry()
        run = run_parallel(
            suite,
            drivers=("_faulty_kill",),
            jobs=2,
            max_retries=1,
            retry_backoff=0.001,
            metrics=metrics,
        )
        # Only the killer fails; the quarantine probing must never
        # charge the innocent in-flight victims of its BrokenProcessPool.
        assert run.statuses["_faulty_kill/beta"] == "failed"
        assert run.statuses["_faulty_kill/alpha"] in ("computed", "retried")
        assert run.statuses["_faulty_kill/gamma"] in ("computed", "retried")
        [error] = run.errors
        assert "worker process died" in error["error"]
        assert metrics.counter("runner.pool_rebuilds").value >= 1
        assert run.rows["_faulty_kill"] == figure5(
            {k: v for k, v in suite.items() if k != "beta"}
        )


# ----------------------------------------------------------------------
# Kill-and-resume: the acceptance test for the checkpoint journal.
# ----------------------------------------------------------------------
_RESUME_SCRIPT = """
import json, os, sys
from repro.analysis import PARALLEL_DRIVERS, run_parallel
from repro.analysis.experiments import figure5
from repro.workloads import WorkloadSpec, generate

def _crashy(suite, *, kill_file=""):
    # Dies with the whole process (no cleanup, like SIGKILL) when the
    # kill switch exists — but only on the last benchmark, so earlier
    # units have already been journaled.
    rows = figure5(suite)
    if kill_file and os.path.exists(kill_file) and "gamma" in suite:
        os._exit(17)
    return rows

PARALLEL_DRIVERS["_crashy"] = _crashy

suite = {}
for i, name in enumerate(("alpha", "beta", "gamma")):
    spec = WorkloadSpec(name=name, num_functions=6, num_calls=80, num_levels=3)
    suite[name] = generate(spec, seed=300 + i)

checkpoint, kill_file, out_path, resume = sys.argv[1:5]
run = run_parallel(
    suite,
    drivers=("_crashy",),
    jobs=1,
    checkpoint=checkpoint,
    resume=resume == "1",
    driver_kwargs={"_crashy": {"kill_file": kill_file}},
)
doc = {
    "rows": run.rows,
    "statuses": run.statuses,
    "cache_hits": run.cache_hits,
    "cache_misses": run.cache_misses,
    "ok": run.ok,
}
with open(out_path, "w") as fh:
    json.dump(doc, fh, sort_keys=True)
"""


def _run_resume_script(tmp_path, checkpoint, kill_file, out, resume):
    script = tmp_path / "resume_script.py"
    script.write_text(_RESUME_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(script), str(checkpoint), str(kill_file),
         str(out), "1" if resume else "0"],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestKillAndResume:
    def test_killed_run_resumes_to_bitwise_identical_rows(self, tmp_path):
        checkpoint = tmp_path / "runstate.jsonl"
        kill_file = tmp_path / "kill.switch"
        kill_file.write_text("armed")

        # 1. The run dies mid-flight on the last unit.
        proc = _run_resume_script(
            tmp_path, checkpoint, kill_file, tmp_path / "dead.json", False
        )
        assert proc.returncode == 17, proc.stderr
        assert checkpoint.is_file(), "journal must survive the kill"

        # 2. Disarm the fault and resume from the checkpoint.
        kill_file.unlink()
        proc = _run_resume_script(
            tmp_path, checkpoint, kill_file, tmp_path / "resumed.json", True
        )
        assert proc.returncode == 0, proc.stderr
        resumed = json.loads((tmp_path / "resumed.json").read_text())

        # 3. An uninterrupted run, fresh journal, same inputs.
        proc = _run_resume_script(
            tmp_path, tmp_path / "fresh.jsonl", kill_file,
            tmp_path / "clean.json", False,
        )
        assert proc.returncode == 0, proc.stderr
        clean = json.loads((tmp_path / "clean.json").read_text())

        assert resumed["ok"] and clean["ok"]
        # Bitwise-identical rows (the files are canonical JSON dumps).
        assert (tmp_path / "resumed.json").read_bytes() != b""
        assert resumed["rows"] == clean["rows"]
        assert json.dumps(resumed["rows"], sort_keys=True) == json.dumps(
            clean["rows"], sort_keys=True
        )
        # The resumed run recomputed only the unit that was in flight
        # when the process died.
        assert resumed["statuses"]["_crashy/alpha"] == "cached"
        assert resumed["statuses"]["_crashy/beta"] == "cached"
        assert resumed["statuses"]["_crashy/gamma"] == "computed"
        assert resumed["cache_hits"] == 2
        assert resumed["cache_misses"] == 1


class TestResultStoreIntegration:
    def test_second_run_is_all_hits_and_recomputes_nothing(self, suite, tmp_path):
        store_dir = tmp_path / "store"
        cold = run_parallel(
            suite, drivers=("figure5",), jobs=1, cache=store_dir
        )
        assert cold.ok
        assert cold.cache_hits == 0 and cold.cache_misses == len(suite)

        # Prove zero recomputation, not just matching rows: the warm
        # run uses a registry whose miss counter must stay at zero.
        metrics = MetricsRegistry()
        warm = run_parallel(
            suite, drivers=("figure5",), jobs=1, cache=store_dir,
            metrics=metrics,
        )
        assert warm.ok
        assert warm.rows == cold.rows
        assert warm.cache_hits == len(suite) and warm.cache_misses == 0
        assert set(warm.statuses.values()) == {"cached"}
        snap = metrics.snapshot()
        assert snap["store.hits"] == len(suite)
        assert snap["store.misses"] == 0
        assert snap.get("store.puts", 0) == 0
        assert snap["runner.units.cached"] == len(suite)

    def test_changed_kwargs_invalidate_the_cache(self, suite, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run_parallel(
            suite, drivers=("figure5",), jobs=1, cache=store,
            driver_kwargs={"figure5": {"model_seed": 1}},
        )
        assert first.ok
        second = run_parallel(
            suite, drivers=("figure5",), jobs=1, cache=store,
            driver_kwargs={"figure5": {"model_seed": 2}},
        )
        assert second.ok
        assert second.cache_hits == 0, "changed kwargs must miss"

    def test_failed_units_are_not_cached(self, suite, tmp_path):
        store = ResultStore(tmp_path / "store")
        bad = run_parallel(
            suite, drivers=("_faulty_raise",), jobs=1,
            max_retries=0, retry_backoff=0.001, cache=store,
        )
        assert not bad.ok
        # Only alpha and gamma were persisted; beta stays a miss and is
        # recomputed (and fails again) on the next run.
        again = run_parallel(
            suite, drivers=("_faulty_raise",), jobs=1,
            max_retries=0, retry_backoff=0.001, cache=store,
        )
        assert again.statuses["_faulty_raise/beta"] == "failed"
        assert again.statuses["_faulty_raise/alpha"] == "cached"
        assert again.statuses["_faulty_raise/gamma"] == "cached"
